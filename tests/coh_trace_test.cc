/**
 * @file
 * Coherence-transaction span causality on a hand-written sharing
 * workload: three nodes read-share one line, then (synchronized
 * through an f/e-locked counter) the home node writes it, forcing
 * exactly three invalidations. Asserts every fill's parent is its
 * miss, the invalidation acks balance per transaction, the always-on
 * directory census saw the three-wide sharer set, and the span log is
 * bit-identical across cycle-skip modes and host-thread counts.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "machine/alewife_machine.hh"
#include "machine/coh_report.hh"
#include "workloads/handwritten.hh"

namespace april
{
namespace
{

using namespace tagged;

constexpr Addr kShared = 512;   ///< the contended word (line 128)
constexpr Addr kLock = 400;     ///< f/e lock guarding the counter
constexpr Addr kCount = 404;    ///< arrival counter (separate line)
constexpr uint32_t kSharers = 3;

/**
 * Nodes 1..3: load kShared (becoming sharers), then bump the arrival
 * counter under the f/e lock and halt. Node 0 (kShared's home) spins
 * until all three arrived, writes kShared — invalidating the three
 * sharers — and stops the machine.
 */
Program
buildSharingWorkload()
{
    Assembler as;
    as.bind("worker");
    as.ldio(6, int(IoReg::NodeId));
    as.cmpiR(6, 0);
    as.jRaw(Cond::EQ, "master");
    as.nop();

    // Sharer path: read the line, then announce arrival.
    as.movi(1, ptr(kShared, Tag::Other));
    as.ldnw(2, 1, 0);
    as.movi(3, ptr(kLock, Tag::Other));
    as.movi(4, ptr(kCount, Tag::Other));
    as.bind("acq");
    as.ldenw(5, 3, 0);
    as.jRaw(Cond::EMPTY, "acq");
    as.nop();
    as.ldnw(5, 4, 0);
    as.addi(5, 5, int32_t(fixnum(1)));
    as.stnw(5, 4, 0);
    as.stfnw(reg::r0, 3, 0);
    as.halt();

    // Master path: wait for the sharers, then invalidate them all
    // with one exclusive write.
    as.bind("master");
    as.movi(4, ptr(kCount, Tag::Other));
    as.bind("wait");
    as.ldnw(5, 4, 0);
    as.cmpiR(5, int32_t(fixnum(int32_t(kSharers))));
    as.jRaw(Cond::NE, "wait");
    as.nop();
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, fixnum(7));
    as.stnw(2, 1, 0);
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.halt();

    // The coherent-loop trap stubs (same labels, so the shared
    // bootCoherentNode helper wires this workload too).
    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    return as.finish();
}

std::unique_ptr<AlewifeMachine>
runOnce(const Program &prog, uint32_t threads, bool skip,
        coh::DirScheme scheme = coh::DirScheme::FullMap,
        uint32_t pointers = 4, int dim = 2, int radix = 2)
{
    AlewifeParams p;
    p.network = {.dim = dim, .radix = radix};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.cycleSkip = skip;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    p.dirScheme = scheme;
    p.dirPointers = pointers;
    p.cohTrace = true;
    p.hostThreads = threads;
    auto m = std::make_unique<AlewifeMachine>(p, &prog);
    for (uint32_t n = 0; n < m->numNodes(); ++n)
        workloads::bootCoherentNode(m->proc(n), prog);
    m->memory().write(kCount, fixnum(0));
    m->run(10'000'000);
    EXPECT_TRUE(m->halted());
    // Raw workload: every core halts, so the machine drains fully and
    // the invalidation/ack balance must hold exactly.
    EXPECT_TRUE(m->quiesce(1'000'000));
    return m;
}

std::string
cohJson(AlewifeMachine &m)
{
    std::ostringstream os;
    m.writeCohTrace(os);
    return os.str();
}

TEST(CohTrace, SpanCausalityOnSharingWorkload)
{
    Program prog = buildSharingWorkload();
    auto m = runOnce(prog, 1, true);
    coh::Controller &home = m->controller(0);

    // The write invalidated the three sharers (the lock and counter
    // lines are contended too, so >= not ==), and — with the machine
    // drained — every invalidation node 0 sent was acknowledged.
    EXPECT_GE(uint64_t(home.statInvSent.value()), kSharers);
    EXPECT_EQ(home.statInvSent.value(), home.statInvAcks.value());

    // The always-on census saw the three-wide sharer set...
    EXPECT_GE(home.statSharerCount.max(), int64_t(kSharers));
    // ...and the exclusive request that tore it down.
    EXPECT_EQ(home.statInvPerWrite.max(), int64_t(kSharers));
    size_t shared_to_excl =
        size_t(coh::DirState::Shared) * coh::kNumDirStates +
        size_t(coh::DirState::Exclusive);
    EXPECT_GE(home.statDirTransitions[shared_to_excl].value(), 1.0);

    Addr line = kShared / 4;
    auto it = home.lineCensus().find(line);
    ASSERT_NE(it, home.lineCensus().end());
    EXPECT_EQ(it->second.maxSharers, kSharers);
    EXPECT_EQ(it->second.invs, kSharers);

    // Network telemetry accounted each invalidation leg: at least
    // the three kShared invalidations crossed the network, and every
    // sent message of both classes was delivered.
    net::Telemetry &tel = m->telemetry();
    EXPECT_GE(tel.classSent(size_t(coh::MsgType::Inv)), kSharers);
    EXPECT_EQ(tel.classSent(size_t(coh::MsgType::Inv)),
              tel.classDelivered(size_t(coh::MsgType::Inv)));
    EXPECT_EQ(tel.classSent(size_t(coh::MsgType::InvAck)),
              tel.classDelivered(size_t(coh::MsgType::InvAck)));

    // Span causality: every fill's parent is its miss, and the
    // node-0 write transaction carries the balanced invalidations.
    coh::TxnTracer *tracer = m->txnTracer();
    ASSERT_NE(tracer, nullptr);
    EXPECT_EQ(tracer->dropped(), 0u);
    EXPECT_EQ(checkCohInvariants(*tracer), "");

    std::map<uint64_t, uint64_t> issue_cycle;
    for (const coh::TxnEvent &e : tracer->events()) {
        if (e.phase == coh::TxnPhase::Issue)
            issue_cycle.emplace(e.txn, e.cycle);
    }
    size_t fills = 0;
    for (const coh::TxnEvent &e : tracer->events()) {
        if (e.phase != coh::TxnPhase::Fill)
            continue;
        ++fills;
        auto parent = issue_cycle.find(e.txn);
        ASSERT_NE(parent, issue_cycle.end())
            << "fill without a recorded miss, txn " << e.txn;
        EXPECT_LT(parent->second, e.cycle);
    }
    EXPECT_GT(fills, 0u);

    bool found_write = false;
    for (const coh::TxnRecord &r :
         coh::summarizeTransactions(tracer->events())) {
        EXPECT_EQ(r.requester, r.id >> 32);
        if (r.requester == 0 && r.line == line && r.write) {
            found_write = true;
            EXPECT_TRUE(r.complete);
            EXPECT_EQ(r.invs, kSharers);
            EXPECT_EQ(r.acks, kSharers);
            EXPECT_GT(r.filled, r.issued);
        }
    }
    EXPECT_TRUE(found_write)
        << "node 0's invalidating write was not traced";
}

TEST(CohTrace, SpanLogIsBitIdenticalAcrossEngines)
{
    Program prog = buildSharingWorkload();
    auto ref_machine = runOnce(prog, 1, true);
    std::string ref = cohJson(*ref_machine);
    EXPECT_NE(ref.find("\"transactions\""), std::string::npos);

    for (bool skip : {true, false}) {
        for (uint32_t threads : {1u, 2u, 4u}) {
            if (skip && threads == 1)
                continue;       // the reference configuration
            auto m = runOnce(prog, threads, skip);
            EXPECT_EQ(cohJson(*m), ref)
                << "threads=" << threads << " skip=" << skip;
        }
    }
}

/** The PR 8 machine-scaling configuration (DESIGN.md §7.8): the same
 *  workload reshaped onto a 1-D line mesh of 4 nodes under the
 *  limited directory with a single hardware pointer, so the
 *  three-sharer set overflows, the spill path runs inside the traced
 *  transactions — and both the span log and the stats dump stay
 *  bit-identical across host-thread counts and cycle-skip modes. */
TEST(CohTrace, SpanLogIsBitIdenticalUnderLimitedDirectoryOnMesh)
{
    Program prog = buildSharingWorkload();
    auto run = [&](uint32_t threads, bool skip) {
        return runOnce(prog, threads, skip,
                       coh::DirScheme::LimitedPtr, 1, 1, 4);
    };
    auto ref_machine = run(1, true);
    coh::Controller &home = ref_machine->controller(0);
    EXPECT_GE(home.statOverflowTraps.value(), 1.0);
    EXPECT_GE(home.statSpilledPtrs.value(), 1.0);
    EXPECT_EQ(home.statInvSent.value(), home.statInvAcks.value());
    ASSERT_NE(ref_machine->txnTracer(), nullptr);
    EXPECT_EQ(checkCohInvariants(*ref_machine->txnTracer()), "");
    std::string ref = cohJson(*ref_machine);
    std::ostringstream ref_stats;
    ref_machine->dump(ref_stats);

    for (bool skip : {true, false}) {
        for (uint32_t threads : {1u, 2u, 4u}) {
            if (skip && threads == 1)
                continue;       // the reference configuration
            auto m = run(threads, skip);
            EXPECT_EQ(cohJson(*m), ref)
                << "threads=" << threads << " skip=" << skip;
            std::ostringstream stats;
            m->dump(stats);
            EXPECT_EQ(stats.str(), ref_stats.str())
                << "threads=" << threads << " skip=" << skip;
        }
    }
}

} // namespace
} // namespace april

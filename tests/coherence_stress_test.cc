/**
 * @file
 * Coherence + synchronization stress: all nodes of a mesh hammer the
 * same shared structures through their caches. Lost updates, stale
 * reads or broken lock atomicity would corrupt the final counts.
 */

#include <gtest/gtest.h>

#include "machine/alewife_machine.hh"

namespace april
{
namespace
{

using namespace tagged;

constexpr Addr kLock = 400;     ///< f/e lock word (homed on node 0)
constexpr Addr kCount = 404;    ///< shared counter (separate line)
constexpr int kIters = 60;

Program
buildIncrementers(bool use_tas)
{
    Assembler as;
    as.bind("worker");
    as.movi(1, ptr(kLock, Tag::Other));
    as.movi(2, ptr(kCount, Tag::Other));
    as.movi(3, 0);                      // iteration count
    as.bind("loop");
    if (use_tas) {
        // Encore-style test&set spin lock.
        as.bind("acq");
        as.tas(4, 1, 0);
        as.jRaw(Cond::NE, "acq");
        as.nop();
    } else {
        // APRIL f/e lock: one consuming load per probe.
        as.bind("acq");
        as.ldenw(4, 1, 0);
        as.jRaw(Cond::EMPTY, "acq");
        as.nop();
    }
    as.ldnw(5, 2, 0);                   // counter (cached, coherent)
    as.addi(5, 5, int32_t(fixnum(1)));
    as.stnw(5, 2, 0);
    if (use_tas)
        as.stnw(reg::r0, 1, 0);         // release: store 0
    else
        as.stfnw(reg::r0, 1, 0);        // release: set full
    as.addiR(3, 3, 1);
    as.cmpiR(3, kIters);
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    return as.finish();
}

int64_t
runStress(bool use_tas, int dim, int radix, uint32_t *inv_out = nullptr)
{
    Program prog = buildIncrementers(use_tas);
    AlewifeParams p;
    p.network = {.dim = dim, .radix = radix};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &prog);
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        Processor &proc = m.proc(n);
        proc.reset(prog.entry("worker"));
        proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
        proc.setTrapVector(TrapKind::FeEmpty, prog.entry("cswitch"));
        for (uint32_t f = 1; f < proc.numFrames(); ++f) {
            proc.frame(f).trapPC = prog.entry("fyield");
            proc.frame(f).trapNPC = prog.entry("fyield") + 1;
            proc.frame(f).trapRegs[0] = psr::ET;
        }
    }
    m.memory().write(kCount, fixnum(0));
    for (uint64_t c = 0; c < 20'000'000; ++c) {
        m.tick();
        bool all = true;
        for (uint32_t n = 0; n < m.numNodes(); ++n)
            all &= m.proc(n).halted();
        if (all)
            break;
    }
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        EXPECT_TRUE(m.proc(n).halted()) << "node " << n << " stuck";
    }
    if (inv_out) {
        *inv_out = 0;
        for (uint32_t n = 0; n < m.numNodes(); ++n)
            *inv_out += uint32_t(m.controller(n).statInvSent.value());
    }
    // Read the authoritative value: recall the line by peeking every
    // cache for a modified copy, falling back to memory.
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        auto *line = m.controller(n).cacheRef().find(kCount / 4);
        if (line && line->state == cache::LineState::Modified)
            return toInt(line->words[kCount % 4].data);
    }
    return toInt(m.memory().read(kCount));
}

TEST(CoherenceStress, FeLockCounterFourNodes)
{
    uint32_t invs = 0;
    EXPECT_EQ(runStress(false, 2, 2, &invs), 4 * kIters);
    EXPECT_GT(invs, 0u) << "write sharing must invalidate";
}

TEST(CoherenceStress, FeLockCounterEightNodes)
{
    EXPECT_EQ(runStress(false, 3, 2), 8 * kIters);
}

TEST(CoherenceStress, TasLockCounterFourNodes)
{
    EXPECT_EQ(runStress(true, 2, 2), 4 * kIters);
}

TEST(CoherenceStress, TasLockCounterNineNodes)
{
    EXPECT_EQ(runStress(true, 2, 3), 9 * kIters);
}

} // namespace
} // namespace april

/**
 * @file
 * Directory-protocol tests on a 2x2 ALEWIFE machine driven by
 * hand-written APRIL programs: read sharing, write invalidation,
 * strong coherence, f/e operations on cached lines, context switching
 * on remote misses, and FLUSH/fence.
 */

#include <gtest/gtest.h>

#include <deque>

#include "machine/alewife_machine.hh"

namespace april
{
namespace
{

using namespace tagged;

/** Build a machine around a raw program (no Mul-T, no runtime). */
struct CohRig
{
    explicit CohRig(Program prog_, int dim = 1, int radix = 4)
        : prog(std::move(prog_))
    {
        AlewifeParams p;
        p.network = {.dim = dim, .radix = radix};
        p.wordsPerNode = 1u << 16;
        p.bootRuntime = false;
        p.controller.cache = {.lineWords = 4, .numLines = 64,
                              .assoc = 2};
        machine = std::make_unique<AlewifeMachine>(p, &prog);
        // Raw programs: park every processor at a halt unless given
        // a role below; install a trivial switch handler.
        for (uint32_t n = 0; n < machine->numNodes(); ++n) {
            Processor &proc = machine->proc(n);
            proc.reset(prog.hasSymbol("node" + std::to_string(n))
                           ? prog.entry("node" + std::to_string(n))
                           : prog.entry("park"));
            if (prog.hasSymbol("cswitch")) {
                proc.setTrapVector(TrapKind::RemoteMiss,
                                   prog.entry("cswitch"));
            }
            for (uint32_t f = 1; f < proc.numFrames(); ++f) {
                proc.frame(f).trapPC = prog.entry("fyield");
                proc.frame(f).trapNPC = prog.entry("fyield") + 1;
                proc.frame(f).trapRegs[0] = psr::ET;
            }
        }
    }

    /** Run until every non-parked processor halts. */
    void
    run(uint64_t max_cycles = 100000)
    {
        for (uint64_t i = 0; i < max_cycles; ++i) {
            machine->tick();
            bool all = true;
            for (uint32_t n = 0; n < machine->numNodes(); ++n)
                all &= machine->proc(n).halted();
            if (all)
                return;
        }
        panic("coherence test did not converge");
    }

    Program prog;
    std::unique_ptr<AlewifeMachine> machine;
};

/** Park: spin-yield via the switch-spin sequence, or just halt. */
void
emitPark(Assembler &as)
{
    as.bind("park");
    as.halt();
    // Idle task frames rotate (switch-spin) so a waiting frame's
    // retry comes around.
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
}

constexpr Addr kShared = 100;       ///< homed on node 0

TEST(Coherence, LocalReadMissFillsFromMemory)
{
    Assembler as;
    as.bind("node0");
    as.movi(1, ptr(kShared, Tag::Other));
    as.ldnw(2, 1, 0);               // local miss: hold, then hit
    as.ldnw(3, 1, 0);               // hit
    as.halt();
    emitPark(as);

    CohRig rig(as.finish());
    rig.machine->memory().write(kShared, fixnum(7));
    rig.run();
    EXPECT_EQ(rig.machine->proc(0).readReg(2), fixnum(7));
    EXPECT_EQ(rig.machine->proc(0).readReg(3), fixnum(7));
    auto &cache = rig.machine->controller(0).cacheRef();
    EXPECT_GE(cache.statHits.value(), 1.0);
}

TEST(Coherence, RemoteReadForcesContextSwitch)
{
    Assembler as;
    as.bind("node1");
    as.movi(1, ptr(kShared, Tag::Other));   // homed on node 0
    as.ldnt(2, 1, 0);               // trap-on-miss remote load
    as.halt();
    emitPark(as);

    CohRig rig(as.finish());
    rig.machine->memory().write(kShared, fixnum(9));
    rig.run();
    EXPECT_EQ(rig.machine->proc(1).readReg(2), fixnum(9));
    EXPECT_GE(rig.machine->controller(1).statRemoteMisses.value(), 1.0);
    EXPECT_GE(rig.machine->proc(1)
                  .statTraps[size_t(TrapKind::RemoteMiss)].value(), 1.0);
}

TEST(Coherence, WriteInvalidatesReaders)
{
    // node1 reads the line and spins on a flag; node0 then writes the
    // line (invalidating node1) and raises the flag; node1 re-reads
    // and must see the new value.
    constexpr Addr kFlag = 2000;    // homed on node 0, separate line
    Assembler as;
    as.bind("node0");
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, ptr(kFlag, Tag::Other));
    // wait until node1 signals it has cached the line
    as.bind("n0wait");
    as.ldnw(3, 2, 0);
    as.cmpiR(3, int32_t(fixnum(1)));
    as.jRaw(Cond::NE, "n0wait");
    as.nop();
    as.movi(4, fixnum(42));
    as.stnw(4, 1, 0);               // upgrade: invalidates node1
    as.movi(3, fixnum(2));
    as.stnw(3, 2, 0);               // release: flag = 2
    as.halt();

    as.bind("node1");
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, ptr(kFlag, Tag::Other));
    as.ldnw(5, 1, 0);               // cache the old value
    as.movi(3, fixnum(1));
    as.stnw(3, 2, 0);               // signal
    as.bind("n1wait");
    as.ldnw(3, 2, 0);
    as.cmpiR(3, int32_t(fixnum(2)));
    as.jRaw(Cond::NE, "n1wait");
    as.nop();
    as.ldnw(6, 1, 0);               // must miss (invalidated) and
    as.halt();                      // fetch the new value
    emitPark(as);

    CohRig rig(as.finish());
    rig.machine->memory().write(kShared, fixnum(5));
    rig.run(500000);
    EXPECT_EQ(rig.machine->proc(1).readReg(5), fixnum(5));
    EXPECT_EQ(rig.machine->proc(1).readReg(6), fixnum(42));
    EXPECT_GE(rig.machine->controller(0).statInvSent.value(), 1.0);
}

TEST(Coherence, DirtyLineMigratesBetweenWriters)
{
    constexpr Addr kFlag = 2000;
    Assembler as;
    // node0 writes 10, signals; node1 writes +1 on top.
    as.bind("node0");
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, ptr(kFlag, Tag::Other));
    as.movi(4, fixnum(10));
    as.stnw(4, 1, 0);               // dirty in node0's cache
    as.movi(3, fixnum(1));
    as.stnw(3, 2, 0);
    as.halt();

    as.bind("node1");
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, ptr(kFlag, Tag::Other));
    as.bind("wait");
    as.ldnw(3, 2, 0);
    as.cmpiR(3, int32_t(fixnum(1)));
    as.jRaw(Cond::NE, "wait");
    as.nop();
    as.ldnw(5, 1, 0);               // 3-hop: home recalls dirty line
    as.addi(5, 5, int32_t(fixnum(1)));
    as.stnw(5, 1, 0);               // then upgrade to Modified
    as.halt();
    emitPark(as);

    CohRig rig(as.finish());
    rig.run(500000);
    // The final value lives in node1's cache; flush it via the home's
    // view after recalling: read directly from the cache line.
    auto &cache = rig.machine->controller(1).cacheRef();
    auto *line = cache.lookup(kShared / 4);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->words[kShared % 4].data, fixnum(11));
    EXPECT_GE(rig.machine->controller(1).statWritebacks.value() +
                  rig.machine->controller(0).statWritebacks.value(),
              1.0);
}

TEST(Coherence, FullEmptyBitsTravelWithLines)
{
    // Producer on node0 fills a word with stfnw; consumer on node1
    // spins with a non-trapping consuming load until it sees full.
    Assembler as;
    as.bind("node0");
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, fixnum(77));
    // give the consumer a head start so it caches the empty word
    as.movi(3, 200);
    as.bind("delay");
    as.subiR(3, 3, 1);
    as.jRaw(Cond::GT, "delay");
    as.nop();
    as.stfnw(2, 1, 0);              // store and set full
    as.halt();

    as.bind("node1");
    as.movi(1, ptr(kShared, Tag::Other));
    as.bind("spin");
    as.ldenw(4, 1, 0);              // consuming load (needs Modified)
    as.jRaw(Cond::EMPTY, "spin");
    as.nop();
    as.halt();
    emitPark(as);

    CohRig rig(as.finish());
    rig.machine->memory().setFull(kShared, false);
    rig.run(500000);
    EXPECT_EQ(rig.machine->proc(1).readReg(4), fixnum(77));
}

TEST(Coherence, FlushWritesBackAndCountsFence)
{
    Assembler as;
    as.bind("node0");
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, fixnum(33));
    as.stnw(2, 1, 0);               // dirty the line
    as.flushLine(1, 0);             // write back + invalidate
    as.rdfence(3);                  // outstanding acknowledgments
    as.bind("fwait");
    as.rdfence(4);
    as.cmpiR(4, 0);
    as.jRaw(Cond::NE, "fwait");     // wait for the ack
    as.nop();
    as.ldnw(5, 1, 0);               // re-fetch from memory
    as.halt();
    emitPark(as);

    CohRig rig(as.finish());
    rig.run(500000);
    EXPECT_EQ(rig.machine->proc(0).readReg(3), 1u)
        << "fence counted the dirty flush";
    EXPECT_EQ(rig.machine->memory().read(kShared), fixnum(33))
        << "memory updated by the writeback";
    EXPECT_EQ(rig.machine->proc(0).readReg(5), fixnum(33));
}

TEST(Coherence, ManySharersAllInvalidated)
{
    // Nodes 1..3 cache the line; node 0 writes it. Strong coherence:
    // the write completes only after all three acknowledgments.
    constexpr Addr kFlag = 2000;
    Assembler as;
    as.bind("node0");
    as.movi(1, ptr(kShared, Tag::Other));
    as.movi(2, ptr(kFlag, Tag::Other));
    as.bind("n0wait");
    as.ldnw(3, 2, 0);
    as.cmpiR(3, int32_t(fixnum(3)));
    as.jRaw(Cond::LT, "n0wait");
    as.nop();
    as.movi(4, fixnum(42));
    as.stnw(4, 1, 0);
    as.halt();

    for (int node = 1; node <= 3; ++node) {
        as.bind("node" + std::to_string(node));
        as.movi(1, ptr(kShared, Tag::Other));
        as.movi(2, ptr(kFlag, Tag::Other));
        as.ldnw(5, 1, 0);           // become a sharer
        // fetch-and-add on the flag via tas-free increment: use the
        // f/e lock idiom to serialize.
        as.bind("lk" + std::to_string(node));
        as.ldenw(6, 2, wordOff(1));
        as.jRaw(Cond::EMPTY, "lk" + std::to_string(node));
        as.nop();
        as.ldnw(6, 2, 0);
        as.addi(6, 6, int32_t(fixnum(1)));
        as.stnw(6, 2, 0);
        as.stfnw(reg::r0, 2, wordOff(1));
        as.halt();
    }
    emitPark(as);

    CohRig rig(as.finish());
    rig.machine->memory().write(kShared, fixnum(5));
    rig.machine->memory().write(kFlag, fixnum(0));
    rig.run(500000);
    EXPECT_GE(rig.machine->controller(0).statInvSent.value(), 3.0);
    EXPECT_EQ(rig.machine->memory().read(kFlag), fixnum(3));
}

TEST(Coherence, FalseSharingIncrementsStayIsolated)
{
    // Four nodes each increment a PRIVATE word 100 times, but all
    // four words share one cache line: the line ping-pongs through
    // Modified on every step. Any lost update or stale merge shows up
    // as a wrong final count.
    constexpr Addr kBase = 800;     // words 800..803 = one line
    constexpr int kN = 100;
    Assembler as;
    for (int node = 0; node < 4; ++node) {
        as.bind("node" + std::to_string(node));
        as.movi(1, ptr(kBase + Addr(node), Tag::Other));
        as.movi(3, 0);
        as.bind("l" + std::to_string(node));
        as.ldnw(5, 1, 0);
        as.addi(5, 5, int32_t(fixnum(1)));
        as.stnw(5, 1, 0);
        as.addiR(3, 3, 1);
        as.cmpiR(3, kN);
        as.jRaw(Cond::LT, "l" + std::to_string(node));
        as.nop();
        as.halt();
    }
    emitPark(as);

    CohRig rig(as.finish(), 2, 2);
    for (int i = 0; i < 4; ++i)
        rig.machine->memory().write(kBase + Addr(i), fixnum(0));
    rig.run(2'000'000);
    for (uint32_t i = 0; i < 4; ++i) {
        // The authoritative copy may be dirty in some cache.
        Word v = rig.machine->memory().read(kBase + i);
        for (uint32_t c = 0; c < 4; ++c) {
            auto *line =
                rig.machine->controller(c).cacheRef().find(kBase / 4);
            if (line && line->state == cache::LineState::Modified)
                v = line->words[i].data;
        }
        EXPECT_EQ(toInt(v), kN) << "word " << i;
    }
}

TEST(Coherence, EvictionStormWritesBack)
{
    // One node dirties many lines mapping to the same tiny set and
    // then reads them all back: every value must survive the
    // eviction/writeback/refill churn.
    constexpr int kLines = 32;
    Assembler as;
    as.bind("node0");
    as.movi(1, ptr(1024, Tag::Other));
    as.movi(3, 0);
    as.bind("wloop");
    as.slliR(5, 3, 2);              // fixnum(i)
    as.stnw(5, 1, 0);
    // Stride of 64 lines' worth of words (256 words) to stay in the
    // same set of the 64-line 2-way test cache.
    as.addiR(1, 1, wordOff(256));
    as.addiR(3, 3, 1);
    as.cmpiR(3, kLines);
    as.jRaw(Cond::LT, "wloop");
    as.nop();
    // Read back and sum.
    as.movi(1, ptr(1024, Tag::Other));
    as.movi(3, 0);
    as.movi(6, fixnum(0));
    as.bind("rloop");
    as.ldnw(5, 1, 0);
    as.add(6, 6, 5);
    as.addiR(1, 1, wordOff(256));
    as.addiR(3, 3, 1);
    as.cmpiR(3, kLines);
    as.jRaw(Cond::LT, "rloop");
    as.nop();
    as.halt();
    emitPark(as);

    CohRig rig(as.finish(), 1, 2);
    rig.run(2'000'000);
    int expect = kLines * (kLines - 1) / 2;
    EXPECT_EQ(rig.machine->proc(0).readReg(6), fixnum(expect));
    EXPECT_GE(rig.machine->controller(0).statWritebacks.value(), 8.0);
}

// ---------------------------------------------------------------------
// Directed controller-level tests: a TestFabric captures every
// transmitted message so the test can deliver them in an adversarial
// order — the interleavings april-mc's explorer found interesting.
// ---------------------------------------------------------------------

/** Captures transmitted messages for hand-ordered delivery. */
struct TestFabric : coh::Fabric
{
    struct Pkt
    {
        uint32_t to;
        coh::Message msg;
    };
    std::deque<Pkt> queue;
    uint64_t cycle = 0;

    void
    transmit(uint32_t to, const coh::Message &msg, uint32_t) override
    {
        queue.push_back({to, msg});
    }

    uint64_t now() const override { return cycle; }
};

/** Three bare controllers (home node 0) around one shared memory,
 *  with the mc conformance listener attached — every directed
 *  interleaving below is also a live spec-conformance run. */
struct DirectedRig
{
    TestFabric fabric;
    SharedMemory mem;
    mc::Conformance conform;
    std::vector<std::unique_ptr<coh::Controller>> ctrls;
    uint64_t fenceAcks = 0;     ///< FenceAcks delivered so far

    DirectedRig()
        : mem({.numNodes = 3, .wordsPerNode = 1u << 12})
    {
        coh::ControllerParams p;
        // 4 direct-mapped sets: lines 4 apart collide, so a second
        // fill can evict a dirty line on demand.
        p.cache = {.lineWords = 4, .numLines = 4, .assoc = 1};
        for (uint32_t n = 0; n < 3; ++n) {
            ctrls.push_back(std::make_unique<coh::Controller>(
                p, n, 4, &mem, &fabric));
            ctrls.back()->setTransitionListener(&conform);
        }
    }

    /** Advance time so delayed sends drain into the fabric queue. */
    void
    settle(int cycles = 64)
    {
        for (int i = 0; i < cycles; ++i) {
            ++fabric.cycle;
            for (auto &c : ctrls)
                c->tick();
        }
    }

    bool
    queued(coh::MsgType type, uint32_t to) const
    {
        for (const TestFabric::Pkt &p : fabric.queue) {
            if (p.msg.type == type && p.to == to)
                return true;
        }
        return false;
    }

    /** Deliver the first queued (type, to) message; test-fails when
     *  none is queued. */
    void
    deliver(coh::MsgType type, uint32_t to)
    {
        for (auto it = fabric.queue.begin(); it != fabric.queue.end();
             ++it) {
            if (it->msg.type != type || it->to != to)
                continue;
            coh::Message m = it->msg;
            fabric.queue.erase(it);
            fenceAcks += m.type == coh::MsgType::FenceAck;
            ctrls[to]->receive(m);
            settle();
            return;
        }
        ADD_FAILURE() << "no queued " << coh::msgTypeName(type)
                      << " for node " << to;
    }

    /** First access of a miss: registers the MSHR and emits the
     *  request (remote misses hold the core with Retry). */
    void
    startWrite(uint32_t node, Addr word)
    {
        MemAccess req;
        req.addr = word;
        req.op = MemOp::Store;
        req.storeData = fixnum(int32_t(node + 1));
        EXPECT_EQ(ctrls[node]->access(req).kind,
                  MemResult::Kind::Retry);
        settle();
    }

    /** The retried access after the fill arrived must hit. */
    void
    finishWrite(uint32_t node, Addr word)
    {
        ASSERT_TRUE(ctrls[node]->fillReady(0));
        MemAccess req;
        req.addr = word;
        req.op = MemOp::Store;
        req.storeData = fixnum(int32_t(node + 1));
        EXPECT_EQ(ctrls[node]->access(req).kind,
                  MemResult::Kind::Ready);
    }

    cache::LineState
    stateOf(uint32_t node, Addr line) const
    {
        auto *l = ctrls[node]->cacheRef().find(line);
        return l ? l->state : cache::LineState::Invalid;
    }
};

TEST(CoherenceDirected, StaleWbEmptyCannotCompleteALaterRecall)
{
    using coh::MsgType;
    // The SWMR counterexample april-mc found (DESIGN.md §7.9): an
    // owner's copy races away via eviction; the eviction WbData
    // completes the recall; the solicited WbEmpty stays in flight and
    // must not complete a LATER recall to the same re-granted owner.
    constexpr Addr kW = 4;      // a word of line 1, homed on node 0
    constexpr Addr kL = 1;
    constexpr Addr kW2 = 20;    // line 5: same direct-mapped set
    DirectedRig rig;

    // n1 takes the line Modified.
    rig.startWrite(1, kW);
    rig.deliver(MsgType::WriteReq, 0);
    rig.deliver(MsgType::WriteReply, 1);
    rig.finishWrite(1, kW);

    // n2 wants it: the home recalls from n1. Hold the WbReq in
    // flight.
    rig.startWrite(2, kW);
    rig.deliver(MsgType::WriteReq, 0);
    EXPECT_TRUE(rig.queued(MsgType::WbReq, 1));

    // n1's copy races away first: a conflicting fill evicts the
    // dirty line, and the eviction WbData completes the recall.
    rig.startWrite(1, kW2);
    rig.deliver(MsgType::WriteReq, 0);
    rig.deliver(MsgType::WriteReply, 1);
    rig.finishWrite(1, kW2);
    rig.deliver(MsgType::WbData, 0);
    rig.deliver(MsgType::WriteReply, 2);
    rig.finishWrite(2, kW);

    // The recall finally reaches n1, which answers WbEmpty — the
    // stale answer to an already-settled recall. Hold it.
    rig.deliver(MsgType::WbReq, 1);
    EXPECT_TRUE(rig.queued(MsgType::WbEmpty, 0));

    // n1 regains Modified (recall to n2 runs to completion)...
    rig.startWrite(1, kW);
    rig.deliver(MsgType::WriteReq, 0);
    rig.deliver(MsgType::WbReq, 2);
    rig.deliver(MsgType::WbData, 0);
    rig.deliver(MsgType::WriteReply, 1);
    rig.finishWrite(1, kW);
    rig.deliver(MsgType::WbData, 0);    // n1's L2 eviction (R16 path)

    // ...and n2 asks again: a recall to n1 is outstanding once more.
    rig.startWrite(2, kW);
    rig.deliver(MsgType::WriteReq, 0);

    // The stale WbEmpty lands mid-recall. Completing it here would
    // grant n2 Modified while n1 still holds Modified.
    rig.deliver(MsgType::WbEmpty, 0);
    EXPECT_FALSE(rig.queued(MsgType::WriteReply, 2));
    EXPECT_FALSE(rig.ctrls[2]->fillReady(0));
    EXPECT_EQ(rig.stateOf(1, kL), cache::LineState::Modified);

    // The genuine answer completes the recall.
    rig.deliver(MsgType::WbReq, 1);
    rig.deliver(MsgType::WbData, 0);
    rig.deliver(MsgType::WriteReply, 2);
    rig.finishWrite(2, kW);
    EXPECT_EQ(rig.stateOf(2, kL), cache::LineState::Modified);
    EXPECT_EQ(rig.stateOf(1, kL), cache::LineState::Invalid);

    EXPECT_GT(rig.conform.checked(), 0u);
    EXPECT_FALSE(rig.conform.violated()) << rig.conform.firstViolation();
}

TEST(CoherenceDirected, FlushRacingARecallAcksTheFenceExactlyOnce)
{
    using coh::MsgType;
    // A FLUSH's fence-flagged WbData overtakes the recall sent for
    // the same line: it must both complete the recall and answer the
    // fence, and the late stale WbEmpty must not ack a second time.
    constexpr Addr kW = 4;
    constexpr Addr kL = 1;
    DirectedRig rig;

    // n1 Modified; recall for n2's write held in flight.
    rig.startWrite(1, kW);
    rig.deliver(MsgType::WriteReq, 0);
    rig.deliver(MsgType::WriteReply, 1);
    rig.finishWrite(1, kW);
    rig.startWrite(2, kW);
    rig.deliver(MsgType::WriteReq, 0);
    EXPECT_TRUE(rig.queued(MsgType::WbReq, 1));

    // n1 FLUSHes the dirty line: one fence goes outstanding.
    MemAccess flush;
    flush.addr = kW;
    flush.op = MemOp::Flush;
    MemResult res = rig.ctrls[1]->access(flush);
    EXPECT_EQ(res.kind, MemResult::Kind::Ready);
    EXPECT_EQ(res.fenceDelta, 1u);
    rig.settle();

    // The flush data reaches home first: recall completed, fence
    // acknowledged, n2 granted.
    rig.deliver(MsgType::WbData, 0);
    rig.deliver(MsgType::FenceAck, 1);
    EXPECT_EQ(rig.fenceAcks, 1u);
    rig.deliver(MsgType::WriteReply, 2);
    rig.finishWrite(2, kW);
    EXPECT_EQ(rig.stateOf(2, kL), cache::LineState::Modified);

    // The recall arrives late; the stale WbEmpty answer must neither
    // disturb the new owner nor ack another fence.
    rig.deliver(MsgType::WbReq, 1);
    rig.deliver(MsgType::WbEmpty, 0);
    rig.settle();
    EXPECT_FALSE(rig.queued(MsgType::FenceAck, 1));
    EXPECT_EQ(rig.fenceAcks, 1u);
    EXPECT_EQ(rig.stateOf(2, kL), cache::LineState::Modified);

    EXPECT_GT(rig.conform.checked(), 0u);
    EXPECT_FALSE(rig.conform.violated()) << rig.conform.firstViolation();
}

} // namespace
} // namespace april

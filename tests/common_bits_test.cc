/** @file Unit tests for bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace april
{
namespace
{

TEST(Bits, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xFFu);
    EXPECT_EQ(mask(64), ~uint64_t(0));
}

TEST(Bits, ExtractBits)
{
    EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 24), 0xDEu);
    EXPECT_EQ(bits(0b1010, 3, 3), 1u);
}

TEST(Bits, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xA), 0xA0u);
    EXPECT_EQ(insertBits(0xFF, 3, 0, 0), 0xF0u);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7F, 8), 127);
    EXPECT_EQ(signExtend(0xFFF, 12), -1);
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(Bits, Log2)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(4096), 12u);
}

TEST(Bits, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
}

} // namespace
} // namespace april

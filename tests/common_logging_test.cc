/** @file Unit tests for the logging / error-reporting layer. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace april
{
namespace
{

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
}

TEST(Logging, PanicMessageIsComposed)
{
    try {
        panic("value=", 7, " name=", "abc");
        FAIL() << "panic must throw";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=abc");
    }
}

TEST(Logging, ErrorsShareBaseClass)
{
    EXPECT_THROW(panic("x"), SimError);
    EXPECT_THROW(fatal("y"), SimError);
}

TEST(Logging, PanicIfNotPassesOnTrue)
{
    EXPECT_NO_THROW(panicIfNot(true, "unused"));
    EXPECT_THROW(panicIfNot(false, "fired"), PanicError);
}

TEST(Logging, QuietFlagRoundTrips)
{
    setQuiet(true);
    EXPECT_TRUE(quiet());
    EXPECT_NO_THROW(inform("suppressed"));
    EXPECT_NO_THROW(warn("suppressed"));
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

TEST(Logging, QuietScopeRestoresOnExit)
{
    setQuiet(false);
    {
        QuietScope q;
        EXPECT_TRUE(quiet());
        {
            QuietScope loud(false);
            EXPECT_FALSE(quiet());
        }
        EXPECT_TRUE(quiet()) << "inner scope must restore, not clear";
    }
    EXPECT_FALSE(quiet());
}

TEST(Logging, WarnOnceDoesNotThrow)
{
    setQuiet(true);
    warnOnce("same message");
    warnOnce("same message");
    setQuiet(false);
}

} // namespace
} // namespace april

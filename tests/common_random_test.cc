/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace april
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceIsCalibrated)
{
    Rng r(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.02);
}

} // namespace
} // namespace april

/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace april::stats
{
namespace
{

TEST(Stats, ScalarAccumulates)
{
    Group g("top");
    Scalar s(&g, "count", "a counter");
    ++s;
    s += 4;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s = 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 2.5);
}

TEST(Stats, ScalarReset)
{
    Group g("top");
    Scalar s(&g, "count", "a counter");
    s += 10;
    g.resetStats();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageComputesMean)
{
    Group g("top");
    Average a(&g, "lat", "latency");
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(Stats, AverageEmptyIsZero)
{
    Group g("top");
    Average a(&g, "lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, DistributionBucketsAndExtremes)
{
    Group g("top");
    Distribution d(&g, "dist", "d", 0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(-3);     // underflow
    d.sample(150);    // overflow
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.min(), -3);
    EXPECT_EQ(d.max(), 150);
}

TEST(Stats, DistributionBadSpecPanics)
{
    Group g("top");
    EXPECT_THROW((Distribution(&g, "bad", "d", 10, 5, 1)), PanicError);
    EXPECT_THROW((Distribution(&g, "bad2", "d", 0, 10, 0)), PanicError);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    Group g("top");
    Scalar num(&g, "hits", "");
    Scalar den(&g, "accesses", "");
    Formula ratio(&g, "hitRate", "hit ratio", [&] {
        return den.value() ? num.value() / den.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    num += 3;
    den += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
}

TEST(Stats, GroupDumpContainsNestedNames)
{
    Group top("machine");
    Group child("proc0", &top);
    Scalar s(&child, "cycles", "total cycles");
    s += 7;
    std::ostringstream os;
    top.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("machine.proc0.cycles"), std::string::npos);
    EXPECT_NE(out.find("total cycles"), std::string::npos);
}

TEST(Stats, FindStatLocatesDirectChildren)
{
    Group g("top");
    Scalar s(&g, "x", "");
    EXPECT_EQ(g.findStat("x"), &s);
    EXPECT_EQ(g.findStat("y"), nullptr);
}

TEST(Stats, ResolveWalksDottedPaths)
{
    Group top("machine");
    Group proc("proc3", &top);
    Group tlb("tlb", &proc);
    Scalar traps(&proc, "trapsRemoteMiss", "remote-miss traps");
    Scalar hits(&tlb, "hits", "");
    traps += 9;

    EXPECT_EQ(top.resolve("proc3.trapsRemoteMiss"), &traps);
    EXPECT_EQ(top.resolve("proc3.tlb.hits"), &hits);
    // A dotless path degenerates to findStat on this group.
    EXPECT_EQ(proc.resolve("trapsRemoteMiss"), &traps);
    // Any missing component resolves to nothing.
    EXPECT_EQ(top.resolve("proc4.trapsRemoteMiss"), nullptr);
    EXPECT_EQ(top.resolve("proc3.nope"), nullptr);
    EXPECT_EQ(top.resolve("proc3.tlb"), nullptr)
        << "a path naming a group, not a stat, must not resolve";
}

TEST(Stats, DumpJsonNestsGroupsAndEscapes)
{
    Group top("machine");
    Group child("proc0", &top);
    Scalar s(&child, "cycles", "total \"core\" cycles");
    s += 7;
    Average a(&top, "lat", "latency");
    a.sample(4);
    a.sample(6);

    std::ostringstream os;
    top.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"name\":\"machine\""), std::string::npos);
    EXPECT_NE(out.find("\"proc0\":{"), std::string::npos);
    EXPECT_NE(out.find("\"cycles\":{\"type\":\"scalar\""),
              std::string::npos);
    EXPECT_NE(out.find("\"value\":7"), std::string::npos);
    EXPECT_NE(out.find("\"mean\":5,\"sum\":10,\"count\":2"),
              std::string::npos);
    EXPECT_NE(out.find("total \\\"core\\\" cycles"), std::string::npos);
}

TEST(Stats, NestedResetClearsEverything)
{
    Group top("t");
    Group mid("m", &top);
    Scalar a(&top, "a", "");
    Scalar b(&mid, "b", "");
    a += 1;
    b += 2;
    top.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, HistogramLog2BucketIndex)
{
    Group g("top");
    Histogram h(&g, "gap", "log2 histogram", 6);
    // Bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i; the last
    // bucket absorbs everything larger.
    EXPECT_EQ(h.bucketIndex(-5), 0u);
    EXPECT_EQ(h.bucketIndex(0), 0u);
    EXPECT_EQ(h.bucketIndex(1), 1u);
    EXPECT_EQ(h.bucketIndex(2), 2u);
    EXPECT_EQ(h.bucketIndex(3), 2u);
    EXPECT_EQ(h.bucketIndex(4), 3u);
    EXPECT_EQ(h.bucketIndex(7), 3u);
    EXPECT_EQ(h.bucketIndex(8), 4u);
    EXPECT_EQ(h.bucketIndex(16), 5u);       // last bucket
    EXPECT_EQ(h.bucketIndex(1 << 20), 5u);  // clamped into it
}

TEST(Stats, HistogramSampleStatistics)
{
    Group g("top");
    Histogram h(&g, "lat", "latency histogram");
    h.sample(1);
    h.sample(4);
    h.sample(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 35.0);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 100);
    EXPECT_DOUBLE_EQ(h.summaryValue(), 35.0);
    g.resetStats();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, HistogramDumpJson)
{
    Group g("top");
    Histogram h(&g, "lat", "latency", 4);
    h.sample(1);
    h.sample(3);
    h.sample(1000);     // clamps into the last bucket
    std::ostringstream os;
    g.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"lat\":{\"type\":\"histogram\""),
              std::string::npos);
    EXPECT_NE(out.find("\"count\":3"), std::string::npos);
    EXPECT_NE(out.find("\"buckets\":[0,1,1,1]"), std::string::npos)
        << out;
}

TEST(Stats, SummaryValueCoversEveryKind)
{
    Group g("top");
    Scalar s(&g, "s", "");
    s += 4;
    Average a(&g, "a", "");
    a.sample(2);
    a.sample(4);
    Formula f(&g, "f", "", [&] { return s.value() * 10; });
    EXPECT_DOUBLE_EQ(s.summaryValue(), 4.0);
    EXPECT_DOUBLE_EQ(a.summaryValue(), 3.0);
    EXPECT_DOUBLE_EQ(f.summaryValue(), 40.0);
    // The group exposes its member list for generic consumers
    // (IntervalSampler walks it to build time-series columns).
    EXPECT_EQ(g.statsList().size(), 3u);
    EXPECT_TRUE(g.childGroups().empty());
}

} // namespace
} // namespace april::stats

/**
 * @file
 * The cycle-skipping engine: unit tests for every nextEventCycle()
 * implementation (processor stalled/halted, controller pending work,
 * network in-flight packet) and differential tests asserting that
 * fast-forwarding is cycle-exact — identical final cycle counts,
 * statistics and console output with skipping on and off, on both the
 * perfect-memory machine and the full ALEWIFE machine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "machine/alewife_machine.hh"
#include "machine/driver.hh"
#include "workloads/workloads.hh"

#include "test_support/machine_workloads.hh"
#include "test_support/proc_rig.hh"

namespace april
{
namespace
{

using namespace tagged;

// ---------------------------------------------------------------------
// Processor::nextEventCycle / skipCycles
// ---------------------------------------------------------------------

Program
buildMulThenHalt()
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(6));
    as.movi(2, fixnum(7));
    as.mul(3, 1, 2);            // multi-cycle: stalls the core
    as.halt();
    return as.finish();
}

TEST(ProcNextEvent, RunnableStalledHalted)
{
    testutil::Rig rig(buildMulThenHalt());
    Processor &p = rig.proc;

    // Runnable: the next event is simply the next tick.
    EXPECT_EQ(p.nextEventCycle(), p.cycle() + 1);

    p.tick();                   // movi
    p.tick();                   // movi
    p.tick();                   // mul issues and stalls
    uint64_t next = p.nextEventCycle();
    EXPECT_GT(next, p.cycle() + 1) << "MUL must leave the core stalled";

    // Nothing observable happens strictly before `next`...
    while (p.cycle() < next - 1)
        p.tick();
    EXPECT_EQ(p.statInsts.value(), 3.0);
    EXPECT_FALSE(p.halted());
    // ... and at `next` the core executes again (HALT here).
    p.tick();
    EXPECT_TRUE(p.halted());

    // Halted: never again.
    EXPECT_EQ(p.nextEventCycle(), kNeverCycle);
    uint64_t before = p.cycle();
    p.skipCycles(12345);        // ignored, exactly as tick() would be
    EXPECT_EQ(p.cycle(), before);
}

TEST(ProcNextEvent, SkipCyclesMatchesTicking)
{
    testutil::Rig ticked(buildMulThenHalt());
    testutil::Rig skipped(buildMulThenHalt());

    for (int i = 0; i < 3; ++i) {
        ticked.proc.tick();
        skipped.proc.tick();
    }
    uint64_t next = ticked.proc.nextEventCycle();
    ASSERT_EQ(next, skipped.proc.nextEventCycle());

    // One core ticks through the stall window, the other jumps to one
    // cycle before the event, then both run to completion.
    while (ticked.proc.cycle() < next - 1)
        ticked.proc.tick();
    skipped.proc.skipCycles(next - skipped.proc.cycle() - 1);

    ticked.run();
    skipped.run();
    EXPECT_EQ(ticked.proc.cycle(), skipped.proc.cycle());
    EXPECT_EQ(ticked.proc.statCycles.value(),
              skipped.proc.statCycles.value());
    EXPECT_EQ(ticked.proc.statStallCycles.value(),
              skipped.proc.statStallCycles.value());
    EXPECT_EQ(ticked.proc.statInsts.value(),
              skipped.proc.statInsts.value());
    EXPECT_EQ(ticked.proc.readReg(3), skipped.proc.readReg(3));
}

TEST(ProcNextEvent, SkipPastEventPanics)
{
    testutil::Rig rig(buildMulThenHalt());
    for (int i = 0; i < 3; ++i)
        rig.proc.tick();
    uint64_t window = rig.proc.nextEventCycle() - rig.proc.cycle();
    // Skipping to (or past) the event would swallow an execution.
    EXPECT_THROW(rig.proc.skipCycles(window), PanicError);
}

// ---------------------------------------------------------------------
// coh::Controller::nextEventCycle
// ---------------------------------------------------------------------

/** A fabric stub with a settable clock. */
struct FakeFabric : coh::Fabric
{
    uint64_t cur = 100;
    int transmitted = 0;

    void
    transmit(uint32_t, const coh::Message &, uint32_t) override
    {
        ++transmitted;
    }

    uint64_t now() const override { return cur; }
};

TEST(CtrlNextEvent, IdlePendingAndInbox)
{
    SharedMemory mem({.numNodes = 1, .wordsPerNode = 1u << 16});
    FakeFabric fabric;
    coh::ControllerParams cp;
    cp.cache = {.lineWords = 4, .numLines = 16, .assoc = 2};
    coh::Controller ctrl(cp, 0, 4, &mem, &fabric);

    // Fully idle: no self-generated events, ever.
    EXPECT_EQ(ctrl.nextEventCycle(), kNeverCycle);

    // A cache miss queues a request behind controller occupancy: the
    // next event is that entry's due time.
    MemAccess req;
    req.addr = 64;
    req.op = MemOp::Load;
    MemResult r = ctrl.access(req);
    EXPECT_EQ(r.kind, MemResult::Kind::Retry);
    EXPECT_EQ(ctrl.nextEventCycle(), fabric.cur + cp.occupancy);

    // An entry already due (the clock moved past it) dispatches on the
    // very next tick, never in the past.
    fabric.cur += 50;
    EXPECT_EQ(ctrl.nextEventCycle(), fabric.cur + 1);

    // A queued message is handled on the next tick.
    fabric.cur += 100;
    coh::Message msg;
    msg.type = coh::MsgType::FenceAck;
    ctrl.receive(msg);
    EXPECT_EQ(ctrl.nextEventCycle(), fabric.cur + 1);
}

// The network computes each packet's arrival cycle at injection time
// (endpoint model) and keeps no per-cycle state, so it has no
// nextEventCycle() of its own: in-flight packets bound the machine's
// skip windows through the per-node arrival queues, which the
// machine-level differential below (and tests/parallel_run_test.cc)
// pin cycle-exactly.

// ---------------------------------------------------------------------
// Differential: coherence-stress workload on the full machine
// ---------------------------------------------------------------------

using testutil::MachineOut;
using testutil::finishMachine;

MachineOut
runStallStress(bool skip)
{
    Program prog = testutil::buildStallStress(4);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.cycleSkip = skip;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &prog);
    testutil::bootStallStress(m, prog);
    m.run(20'000'000);
    return finishMachine(m);
}

TEST(CycleSkipDifferential, CoherenceStressOnAlewife)
{
    MachineOut on = runStallStress(true);
    MachineOut off = runStallStress(false);
    ASSERT_TRUE(on.halted);
    ASSERT_TRUE(off.halted);
    ASSERT_EQ(on.console.size(), 1u);
    EXPECT_EQ(on.console.at(0), Word(fixnum(4 * testutil::kStressIters)));
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.console, off.console);
    EXPECT_EQ(on.stats, off.stats) << "per-stat values must be "
                                      "identical with skipping on/off";
}

// ---------------------------------------------------------------------
// Differential: future-heavy Mul-T workload, both machines
// ---------------------------------------------------------------------

MachineOut
runEagerFibAlewife(bool skip)
{
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Eager;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(9));
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 20;
    p.cycleSkip = skip;
    p.controller.cache = {.lineWords = 4, .numLines = 512, .assoc = 4};
    AlewifeMachine m(p, &prog);
    m.run(80'000'000);
    return finishMachine(m);
}

TEST(CycleSkipDifferential, EagerFutureFibOnAlewife)
{
    MachineOut on = runEagerFibAlewife(true);
    MachineOut off = runEagerFibAlewife(false);
    ASSERT_TRUE(on.halted);
    ASSERT_TRUE(off.halted);
    ASSERT_FALSE(on.console.empty());
    EXPECT_EQ(on.console.back(), Word(fixnum(34)));
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.console, off.console);
    EXPECT_EQ(on.stats, off.stats);
}

TEST(CycleSkipDifferential, EagerFutureFibOnPerfectMachine)
{
    DriverOptions opts =
        DriverOptions::april(mult::CompileOptions::FutureMode::Eager, 4);
    opts.cycleSkip = true;
    DriverResult on = runMultProgram(workloads::fibSource(10), opts);
    opts.cycleSkip = false;
    DriverResult off = runMultProgram(workloads::fibSource(10), opts);

    EXPECT_EQ(on.result, Word(fixnum(55)));
    EXPECT_EQ(on.result, off.result);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.instructions, off.instructions);
    EXPECT_EQ(on.console, off.console);
    EXPECT_EQ(on.steals, off.steals);
    EXPECT_EQ(on.spawns, off.spawns);
    EXPECT_EQ(on.blocks, off.blocks);
    EXPECT_EQ(on.resumes, off.resumes);
}

} // namespace
} // namespace april

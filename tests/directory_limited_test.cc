/**
 * @file
 * The i-pointer limited directory (DESIGN.md §7.8). The wide-sharing
 * workload pushes one line's sharer set past the pointer budget and
 * asserts the overflow trap fires, the software spill preserves
 * coherence (the final machine state is architecturally identical to
 * the full-map oracle), the always-on census records the spill, and
 * an evict/re-acquire round trip through a stale spilled pointer
 * stays balanced. The forced-spill variant (i = 0) traps on every
 * sharer addition — the fuzzer's worst case — and must agree too.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "machine/alewife_machine.hh"
#include "machine/snapshot.hh"
#include "workloads/handwritten.hh"

namespace april
{
namespace
{

using namespace tagged;

constexpr uint32_t kLineWords = 4;

std::unique_ptr<AlewifeMachine>
runWide(const workloads::WideSharing &w, int dim, int radix,
        coh::DirScheme scheme, uint32_t ptrs, uint32_t threads = 1,
        bool skip = true)
{
    AlewifeParams p;
    p.network = {.dim = dim, .radix = radix};
    p.wordsPerNode = w.wordsPerNode;
    p.bootRuntime = false;
    p.cycleSkip = skip;
    p.controller.cache = {.lineWords = kLineWords, .numLines = 64,
                          .assoc = 2};
    p.dirScheme = scheme;
    p.dirPointers = ptrs;
    p.hostThreads = threads;
    auto m = std::make_unique<AlewifeMachine>(p, &w.prog);
    for (uint32_t n = 0; n < m->numNodes(); ++n)
        workloads::bootCoherentNode(m->proc(n), w.prog);
    m->run(100'000'000);
    EXPECT_TRUE(m->halted());
    EXPECT_TRUE(m->quiesce(1'000'000));
    return m;
}

std::string
statsJson(AlewifeMachine &m)
{
    std::ostringstream os;
    m.dumpJson(os);
    return os.str();
}

TEST(DirectoryLimited, OverflowTrapFiresAndSpillPreservesCoherence)
{
    workloads::WideSharing w = workloads::buildWideSharing(16, 1u << 14);
    auto limited = runWide(w, 2, 4, coh::DirScheme::LimitedPtr, 4);
    auto fullmap = runWide(w, 2, 4, coh::DirScheme::FullMap, 4);

    // 16 sharers against a 4-pointer budget: the trap fired, dumped
    // more pointers than the hardware array holds, and the exclusive
    // write walked the software spill table before invalidating.
    coh::Controller &home = limited->controller(0);
    EXPECT_GE(home.statOverflowTraps.value(), 1.0);
    EXPECT_GE(home.statSpilledPtrs.value(), 5.0);
    EXPECT_GE(home.statSpillWalks.value(), 1.0);

    // The census recorded both the spill and the full sharer width.
    Addr line = w.shared / kLineWords;
    auto it = home.lineCensus().find(line);
    ASSERT_NE(it, home.lineCensus().end());
    EXPECT_GE(it->second.spills, uint64_t(1));
    EXPECT_EQ(it->second.maxSharers, 16u);

    // The invalidation storm stayed balanced under the spill walk.
    EXPECT_GE(uint64_t(home.statInvSent.value()), 15u);
    EXPECT_EQ(home.statInvSent.value(), home.statInvAcks.value());

    // The full-map oracle never traps...
    coh::Controller &ref = fullmap->controller(0);
    EXPECT_EQ(ref.statOverflowTraps.value(), 0.0);
    EXPECT_EQ(ref.lineCensus().find(line)->second.spills, uint64_t(0));

    // ...and the two schemes finish architecturally identical: same
    // console, same memory image, same registers. Only timing moved.
    EXPECT_EQ(limited->console(), fullmap->console());
    ASSERT_EQ(limited->console().size(), 1u);
    EXPECT_EQ(limited->console()[0], fixnum(99));
    EXPECT_EQ(compareArchitectural(snapshotMachine(*limited),
                                   snapshotMachine(*fullmap)),
              "");
}

TEST(DirectoryLimited, ForcedSpillTrapsOnEveryAddition)
{
    workloads::WideSharing w = workloads::buildWideSharing(4, 1u << 14);
    auto forced = runWide(w, 2, 2, coh::DirScheme::LimitedPtr, 0);
    auto fullmap = runWide(w, 2, 2, coh::DirScheme::FullMap, 4);

    // i = 0 leaves no hardware pointers at all: all four sharer
    // additions on the shared line trap (plus whatever the done-flag
    // lines contribute at their own homes).
    coh::Controller &home = forced->controller(0);
    EXPECT_GE(home.statOverflowTraps.value(), 4.0);
    EXPECT_GE(home.statSpillWalks.value(), 1.0);

    EXPECT_EQ(compareArchitectural(snapshotMachine(*forced),
                                   snapshotMachine(*fullmap)),
              "");
}

TEST(DirectoryLimited, BitIdenticalAcrossEnginesUnderLimitedDirectory)
{
    // The spill penalty rides the controller's deterministic delay
    // queue, so the limited directory must keep the parallel engine's
    // bit-identity guarantee: same snapshot, same stats dump for every
    // host-thread count and cycle-skip mode.
    workloads::WideSharing w = workloads::buildWideSharing(16, 1u << 14);
    auto ref = runWide(w, 2, 4, coh::DirScheme::LimitedPtr, 4, 1, true);
    MachineSnapshot ref_snap = snapshotMachine(*ref);
    std::string ref_stats = statsJson(*ref);

    for (bool skip : {true, false}) {
        for (uint32_t threads : {2u, 4u}) {
            auto m = runWide(w, 2, 4, coh::DirScheme::LimitedPtr, 4,
                             threads, skip);
            EXPECT_EQ(compareExact(ref_snap, snapshotMachine(*m)), "")
                << "threads=" << threads << " skip=" << skip;
            EXPECT_EQ(statsJson(*m), ref_stats)
                << "threads=" << threads << " skip=" << skip;
        }
    }
}

/**
 * Evict/re-acquire round trip: a sharer whose pointer already spilled
 * flushes its copy (a silent eviction — the home keeps the stale
 * pointer) and immediately re-reads the line. The re-acquire must
 * fill correctly without a second overflow trap for that node, and
 * the final invalidation storm must stay balanced even though one
 * target no longer holds a copy.
 */
Program
buildEvictReacquire(uint32_t nodes, uint32_t words_per_node,
                    Addr shared, Addr done_off)
{
    int32_t node_shift = 0;
    while ((1u << node_shift) < words_per_node)
        ++node_shift;
    node_shift += int32_t(tagShift);
    const int32_t done_imm = int32_t(ptr(done_off, Tag::Other));

    Assembler as;
    as.bind("worker");
    as.ldio(6, int(IoReg::NodeId));
    as.cmpiR(6, 0);
    as.jRaw(Cond::EQ, "master");
    as.nop();

    // Sharer path: read, evict, re-read; both reads must agree.
    as.movi(1, ptr(shared, Tag::Other));
    as.ldnw(2, 1, 0);
    as.flushLine(1, 0);
    as.ldnw(3, 1, 0);
    as.addR(4, 2, 3);               // fixnum(7) + fixnum(7) = fixnum(14)
    as.ldio(5, int(IoReg::NodeId));
    as.slliR(5, 5, node_shift);
    as.addiR(5, 5, done_imm);
    as.stnw(4, 5, 0);
    as.halt();

    // Master: wait for every sharer's fixnum(14), then invalidate the
    // whole (partly stale) sharer set with one exclusive write.
    as.bind("master");
    as.movi(8, 1);
    as.bind("poll");
    as.slliR(9, 8, node_shift);
    as.addiR(9, 9, done_imm);
    as.bind("pollw");
    as.ldnw(10, 9, 0);
    as.cmpiR(10, int32_t(fixnum(14)));
    as.jRaw(Cond::NE, "pollw");
    as.nop();
    as.addiR(8, 8, 1);
    as.cmpiR(8, int32_t(nodes));
    as.jRaw(Cond::LT, "poll");
    as.nop();
    as.movi(1, ptr(shared, Tag::Other));
    as.movi(2, fixnum(9));
    as.stnw(2, 1, 0);
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    return as.finish();
}

TEST(DirectoryLimited, EvictReacquireRoundTrip)
{
    constexpr Addr kShared = 512;
    constexpr Addr kDoneOff = 520;
    constexpr uint32_t kWordsPerNode = 1u << 14;

    auto run = [&](coh::DirScheme scheme, uint32_t ptrs) {
        Program prog = buildEvictReacquire(4, kWordsPerNode, kShared,
                                           kDoneOff);
        AlewifeParams p;
        p.network = {.dim = 2, .radix = 2};
        p.wordsPerNode = kWordsPerNode;
        p.bootRuntime = false;
        p.controller.cache = {.lineWords = kLineWords, .numLines = 64,
                              .assoc = 2};
        p.dirScheme = scheme;
        p.dirPointers = ptrs;
        auto m = std::make_unique<AlewifeMachine>(p, &prog);
        for (uint32_t n = 0; n < m->numNodes(); ++n)
            workloads::bootCoherentNode(m->proc(n), prog);
        m->memory().write(kShared, fixnum(7));
        m->run(50'000'000);
        EXPECT_TRUE(m->halted());
        EXPECT_TRUE(m->quiesce(1'000'000));
        return m;
    };

    auto limited = run(coh::DirScheme::LimitedPtr, 1);
    auto fullmap = run(coh::DirScheme::FullMap, 4);

    // Three sharers against one pointer: the set overflowed. Every
    // sharer read fixnum(7) both before and after its eviction (the
    // master verified fixnum(14) on every done flag before halting).
    coh::Controller &home = limited->controller(0);
    EXPECT_GE(home.statOverflowTraps.value(), 1.0);
    Addr line = kShared / kLineWords;
    auto it = home.lineCensus().find(line);
    ASSERT_NE(it, home.lineCensus().end());
    EXPECT_GE(it->second.spills, uint64_t(1));
    EXPECT_EQ(it->second.maxSharers, 3u);

    // The storm targeted stale (flushed) sharers too; every
    // invalidation was still acknowledged.
    EXPECT_GE(uint64_t(home.statInvSent.value()), 3u);
    EXPECT_EQ(home.statInvSent.value(), home.statInvAcks.value());

    EXPECT_EQ(compareArchitectural(snapshotMachine(*limited),
                                   snapshotMachine(*fullmap)),
              "");
}

} // namespace
} // namespace april

/**
 * @file
 * The `future-on` placement construct (Section 2.2): "works just like
 * a normal future but allows the specification of the node on which
 * to schedule the future ... to experiment with techniques for
 * enhancing locality."
 */

#include <gtest/gtest.h>

#include "test_support/mult_run.hh"

namespace april
{
namespace
{

using testutil::runMult;
using tagged::fixnum;
using FM = mult::CompileOptions::FutureMode;

TEST(FutureOn, ValueIsNormalFuture)
{
    mult::CompileOptions c;
    c.futures = FM::Eager;
    auto r = runMult(
        "(define (work x) (* x x))"
        "(define (main) (touch (future-on 1 (work 7))))",
        c, 2);
    EXPECT_EQ(r.result, fixnum(49));
    EXPECT_EQ(r.spawns, 1u);
}

TEST(FutureOn, ErasedInSequentialMode)
{
    auto r = runMult(
        "(define (work x) (* x x))"
        "(define (main) (touch (future-on 1 (work 7))))");
    EXPECT_EQ(r.result, fixnum(49));
    EXPECT_EQ(r.spawns, 0u);
}

TEST(FutureOn, PlacementReachesTheNamedNode)
{
    // With stealing effectively idle (the target is told to do the
    // work directly), the task must run on node 2: its processor
    // executes the work loop, and the spawn lands on its queue.
    mult::CompileOptions c;
    c.futures = FM::Eager;

    rt::RuntimeOptions ropts;
    Assembler as;
    rt::Runtime runtime(ropts);
    runtime.emit(as);
    mult::Compiler compiler(as, c);
    compiler.compileSource(
        "(define (spin n acc)"
        "  (if (= n 0) acc (spin (- n 1) (+ acc 1))))"
        "(define (main) (touch (future-on 2 (spin 200 0))))");
    Program prog = as.finish();

    PerfectMachineParams mp;
    mp.numNodes = 4;
    PerfectMachine machine(mp, &prog, runtime);
    machine.run(10'000'000);
    ASSERT_TRUE(machine.halted());
    EXPECT_EQ(machine.console().back(), fixnum(200));
    // Node 2 did the spinning: clearly more work than nodes 1 and 3.
    double n2 = machine.proc(2).statInsts.value();
    EXPECT_GT(n2, 1000.0);
}

TEST(FutureOn, DistributesAcrossAllNodes)
{
    // Round-robin placement of 8 tasks over 4 nodes.
    mult::CompileOptions c;
    c.futures = FM::Eager;
    auto r = runMult(
        "(define (work x) (* x 3))"
        "(define (go i acc)"
        "  (if (= i 8) acc"
        "      (go (+ i 1)"
        "          (+ acc (touch (future-on (remainder i 4)"
        "                                   (work i)))))))"
        "(define (main) (go 0 0))",
        c, 4);
    int expect = 0;
    for (int i = 0; i < 8; ++i)
        expect += 3 * i;
    EXPECT_EQ(r.result, fixnum(expect));
    EXPECT_EQ(r.spawns, 8u);
}

TEST(FutureOn, WorksUnderLazyMode)
{
    // Placement forces an eager task even when the ambient strategy
    // is lazy (a marker cannot target a node).
    mult::CompileOptions c;
    c.futures = FM::Lazy;
    auto r = runMult(
        "(define (work x) (+ x 1))"
        "(define (main) (touch (future-on 1 (work 41))))",
        c, 2);
    EXPECT_EQ(r.result, fixnum(42));
    EXPECT_EQ(r.spawns, 1u);
}

TEST(FutureOn, BadArityIsFatal)
{
    Assembler as;
    mult::Compiler compiler(as, {});
    EXPECT_THROW(
        compiler.compileSource("(define (main) (future-on 1))"),
        FatalError);
}

} // namespace
} // namespace april

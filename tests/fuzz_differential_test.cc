/**
 * @file
 * The differential fuzzing harness (see src/fuzz/). Each random case
 * runs on the ALEWIFE machine with cycle-skipping on and off (must be
 * bit-for-bit twins, including stats and trace JSON) and against the
 * perfect-memory oracle (must agree architecturally).
 *
 * APRIL_FUZZ_ITERS scales the random-program count (default 500, the
 * CI budget); APRIL_FUZZ_SEED re-seeds the whole run. Checked-in
 * regressions under tests/corpus/ replay on every run, and corpus
 * parsing verifies the listing digest, so a seeded re-run is
 * demonstrably byte-for-byte reproducible.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/random.hh"
#include "fuzz/differential.hh"
#include "test_support/env.hh"

#ifndef APRIL_CORPUS_DIR
#define APRIL_CORPUS_DIR ""
#endif

namespace april::fuzz
{
namespace
{

constexpr uint64_t kDefaultSeed = 0xA5211990'04D1FFULL;

/** Shrink a failing case and build the full failure report. */
std::string
failureReport(const FuzzCase &c, const DiffResult &first)
{
    FuzzCase shrunk = shrinkCase(c, [](const FuzzCase &cand) {
        return !runDifferential(cand).ok;
    });
    DiffResult final = runDifferential(shrunk);
    // Shrinking must preserve the failure; fall back to the original
    // if a flaky predicate let everything get deleted.
    if (final.ok)
        return reproText(c, first);
    return reproText(shrunk, final);
}

TEST(FuzzDifferential, RandomPrograms)
{
    uint64_t iters = testutil::envOrU64("APRIL_FUZZ_ITERS", 500);
    uint64_t base = testutil::envOrU64("APRIL_FUZZ_SEED", kDefaultSeed);
    // Every fourth case also replays on the parallel engine, cycling
    // through 2, 3 and 4 host threads; APRIL_FUZZ_THREADS pins every
    // case to one count instead. Every fifth case additionally walks
    // the directory-scheme x mesh axis (limited i=4, forced spill,
    // line-mesh reshape); APRIL_FUZZ_SCHEMES=1 turns it on everywhere.
    uint64_t pin = testutil::envOrU64("APRIL_FUZZ_THREADS", 0);
    uint64_t schemes = testutil::envOrU64("APRIL_FUZZ_SCHEMES", 0);
    uint64_t cycles = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        uint64_t seed = deriveSeed(base, i);
        FuzzCase c = sampleCase(seed);
        DiffOptions opts;
        opts.hostThreads = pin ? uint32_t(pin)
                               : (i % 4 == 3 ? 2 + (i / 4) % 3 : 1);
        opts.schemeAxis = schemes != 0 || i % 5 == 2;
        DiffResult r = runDifferential(c, opts);
        if (!r.ok)
            FAIL() << "iteration " << i << ":\n" << failureReport(c, r);
        cycles += r.alewifeCycles;
    }
    RecordProperty("fuzz_iters", int(iters));
    RecordProperty("alewife_cycles_total", std::to_string(cycles));
}

TEST(FuzzDifferential, SeededRerunIsByteIdentical)
{
    uint64_t base = testutil::envOrU64("APRIL_FUZZ_SEED", kDefaultSeed);
    for (uint64_t i = 0; i < 5; ++i) {
        uint64_t seed = deriveSeed(base, 1000 + i);
        FuzzCase a = sampleCase(seed);
        FuzzCase b = sampleCase(seed);
        EXPECT_EQ(serializeCase(a), serializeCase(b));
        EXPECT_EQ(buildProgram(a).listing(), buildProgram(b).listing());
        DiffResult ra = runDifferential(a);
        DiffResult rb = runDifferential(b);
        EXPECT_EQ(ra.ok, rb.ok);
        EXPECT_EQ(ra.alewifeCycles, rb.alewifeCycles);
        EXPECT_EQ(ra.perfectCycles, rb.perfectCycles);
    }
}

TEST(FuzzDifferential, CorpusReplays)
{
    std::filesystem::path dir(APRIL_CORPUS_DIR);
    ASSERT_FALSE(dir.empty()) << "APRIL_CORPUS_DIR not compiled in";
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

    // Deterministic order: directory iteration order is unspecified.
    std::set<std::filesystem::path> entries;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        if (e.path().extension() == ".april")
            entries.insert(e.path());
    }
    ASSERT_FALSE(entries.empty()) << "no corpus entries in " << dir;

    for (const auto &path : entries) {
        SCOPED_TRACE(path.filename().string());
        std::ifstream in(path);
        ASSERT_TRUE(in.good());
        std::ostringstream text;
        text << in.rdbuf();

        // parseCase re-samples from the recorded seed, re-applies the
        // shrinker's drop list and verifies the listing digest -- so a
        // passing parse *is* the byte-for-byte reproducibility check.
        FuzzCase c;
        std::string err = parseCase(text.str(), c);
        ASSERT_EQ(err, "");
        // Corpus entries also walk the directory-scheme x mesh axis:
        // a past regression is exactly the program most worth running
        // under the limited directory and the reshaped mesh.
        DiffOptions sopts;
        sopts.schemeAxis = true;
        DiffResult r = runDifferential(c, sopts);
        EXPECT_TRUE(r.ok) << r.divergence;

        // Past regressions are exactly the cases most likely to poke
        // at quantum-boundary behavior: replay each one through the
        // parallel engine too.
        for (uint32_t threads : {2u, 4u}) {
            DiffOptions opts;
            opts.hostThreads = threads;
            DiffResult pr = runDifferential(c, opts);
            EXPECT_TRUE(pr.ok)
                << "threads=" << threads << ":\n" << pr.divergence;
        }
    }
}

TEST(FuzzDifferential, ShrinkerMinimizesInjectedFailure)
{
    // Synthetic "bug": the case fails whenever node 0 still contains
    // the poisoned soft-trap item. The shrinker should strip nearly
    // everything else without ever touching the culprit.
    uint64_t base = testutil::envOrU64("APRIL_FUZZ_SEED", kDefaultSeed);
    FuzzCase c = sampleCase(deriveSeed(base, 4242));
    ASSERT_FALSE(c.bodies.empty());
    ASSERT_GE(c.bodies[0].size(), 4u);
    size_t mid = c.bodies[0].size() / 2;
    c.bodies[0][mid].kind = ItemKind::SoftTrap;
    c.bodies[0][mid].vec = 7;
    uint32_t culprit = c.bodies[0][mid].origIndex;

    auto poisoned = [culprit](const FuzzCase &cand) {
        for (const BodyItem &item : cand.bodies[0]) {
            if (item.kind == ItemKind::SoftTrap && item.vec == 7 &&
                item.origIndex == culprit) {
                return true;
            }
        }
        return false;
    };

    size_t before = 0;
    for (const auto &body : c.bodies)
        before += body.size();
    FuzzCase shrunk = shrinkCase(c, poisoned);
    size_t after = 0;
    for (const auto &body : shrunk.bodies)
        after += body.size();

    EXPECT_TRUE(poisoned(shrunk));
    // Node 0 keeps only the culprit; other nodes shrink to nothing.
    EXPECT_EQ(shrunk.bodies[0].size(), 1u);
    EXPECT_LT(after, before);
    EXPECT_EQ(shrunk.dropped.size(), before - after);
}

TEST(FuzzGenerator, CoversTheInterestingIsaSurface)
{
    // Structural coverage over a modest sample: every Table 2 flavor
    // bit-combination, both access kinds, branches on the F latch,
    // futures, and every machine shape must all be reachable.
    uint64_t base = testutil::envOrU64("APRIL_FUZZ_SEED", kDefaultSeed);
    std::set<int> loadFlavors, storeFlavors, frames, nodes;
    bool sawFBranch = false, sawFutureAlias = false, sawTas = false;
    bool sawSoftTrap = false;
    for (uint64_t i = 0; i < 200; ++i) {
        FuzzCase c = sampleCase(deriveSeed(base, 7000 + i));
        frames.insert(int(c.numFrames));
        nodes.insert(int(c.numNodes()));
        for (const auto &body : c.bodies) {
            for (const BodyItem &item : body) {
                int flavor = int(item.feTrap) | int(item.feModify) << 1 |
                             int(item.missTrap) << 2;
                switch (item.kind) {
                  case ItemKind::Load:
                    loadFlavors.insert(flavor);
                    break;
                  case ItemKind::Store:
                    storeFlavors.insert(flavor);
                    break;
                  case ItemKind::Tas:
                    sawTas = true;
                    break;
                  case ItemKind::Branch:
                    if (item.cond == Cond::FULL ||
                        item.cond == Cond::EMPTY) {
                        sawFBranch = true;
                    }
                    break;
                  case ItemKind::SoftTrap:
                    sawSoftTrap = true;
                    break;
                  default:
                    break;
                }
                if ((item.kind == ItemKind::Load ||
                     item.kind == ItemKind::Store) &&
                    item.region == Region::FutureAlias) {
                    sawFutureAlias = true;
                }
            }
        }
    }
    EXPECT_EQ(loadFlavors.size(), 8u);
    EXPECT_EQ(storeFlavors.size(), 8u);
    EXPECT_EQ(frames, (std::set<int>{1, 2, 3, 4}));
    EXPECT_EQ(nodes, (std::set<int>{2, 4}));
    EXPECT_TRUE(sawFBranch);
    EXPECT_TRUE(sawFutureAlias);
    EXPECT_TRUE(sawTas);
    EXPECT_TRUE(sawSoftTrap);
}

} // namespace
} // namespace april::fuzz

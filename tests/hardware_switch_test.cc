/**
 * @file
 * End-to-end comparison of the two context-switch designs the paper
 * weighs (Section 6.1): the SPARC-based trap handler (11 cycles) and
 * the custom-APRIL hardware switch (4 cycles). Results must agree;
 * the hardware switch must never be slower; and because switches are
 * rare in a cache-based machine, the advantage must be modest — the
 * argument that justifies shipping the cheap trap-based design.
 */

#include <gtest/gtest.h>

#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/workloads.hh"

namespace april
{
namespace
{

using FM = mult::CompileOptions::FutureMode;

struct SwitchRun
{
    Word result = 0;
    uint64_t cycles = 0;
    double switches = 0;
};

SwitchRun
runSwitchMode(const std::string &src, ProcParams::SwitchMode mode)
{
    mult::CompileOptions copts;
    copts.futures = FM::Eager;
    rt::RuntimeOptions ropts;
    ropts.hardwareSwitch = mode == ProcParams::SwitchMode::Hardware;
    Assembler as;
    rt::Runtime runtime(ropts);
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(src);
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.proc.switchMode = mode;
    p.controller.cache = {.lineWords = 4, .numLines = 512, .assoc = 4};
    AlewifeMachine m(p, &prog);
    m.run(200'000'000);
    EXPECT_TRUE(m.halted());

    SwitchRun r;
    r.result = m.console().back();
    r.cycles = m.cycle();
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        r.switches += m.proc(n).statSwitches.value() +
                      m.proc(n)
                          .statTraps[size_t(TrapKind::RemoteMiss)]
                          .value();
    }
    return r;
}

TEST(HardwareSwitch, ResultsAgreeAcrossSwitchDesigns)
{
    std::string src = workloads::fibSource(12);
    SwitchRun trap = runSwitchMode(src, ProcParams::SwitchMode::TrapHandler);
    SwitchRun hw = runSwitchMode(src, ProcParams::SwitchMode::Hardware);
    EXPECT_EQ(trap.result, hw.result);
    EXPECT_EQ(tagged::toInt(trap.result), workloads::fibExpected(12));
}

TEST(HardwareSwitch, FourCycleSwitchIsNoSlower)
{
    std::string src = workloads::fibSource(13);
    SwitchRun trap = runSwitchMode(src, ProcParams::SwitchMode::TrapHandler);
    SwitchRun hw = runSwitchMode(src, ProcParams::SwitchMode::Hardware);
    EXPECT_LE(hw.cycles, trap.cycles + trap.cycles / 20)
        << "hardware switching must not lose";
    // ... and the advantage is modest, because "the switching
    // frequency is expected to be small in a cache-based system"
    // (Section 8): well under 2x end to end.
    EXPECT_GT(double(hw.cycles), 0.5 * double(trap.cycles));
}

TEST(HardwareSwitch, QueensAgreesToo)
{
    std::string src = workloads::queensSource(5);
    SwitchRun trap = runSwitchMode(src, ProcParams::SwitchMode::TrapHandler);
    SwitchRun hw = runSwitchMode(src, ProcParams::SwitchMode::Hardware);
    EXPECT_EQ(trap.result, hw.result);
    EXPECT_EQ(tagged::toInt(hw.result), workloads::queensExpected(5));
}

} // namespace
} // namespace april

/** @file Unit tests for the macro-assembler and Program container. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace april
{
namespace
{

TEST(Assembler, LabelsResolveToAbsoluteAddresses)
{
    Assembler as;
    as.bind("start");
    as.nop();                   // 0
    as.j(Cond::AL, "target");   // 1 + delay-slot nop at 2
    as.nop();                   // 3
    as.bind("target");
    as.halt();                  // 4

    Program p = as.finish();
    EXPECT_EQ(p.entry("start"), 0u);
    EXPECT_EQ(p.entry("target"), 4u);
    EXPECT_EQ(p.at(1).imm, 4);
}

TEST(Assembler, ForwardAndBackwardReferences)
{
    Assembler as;
    as.bind("loop");
    as.nop();
    as.j(Cond::NE, "loop");     // backward
    as.j(Cond::AL, "end");      // forward
    as.bind("end");
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p.at(1).imm, 0);
    EXPECT_EQ(p.at(3).imm, int32_t(p.entry("end")));
}

TEST(Assembler, UndefinedLabelPanicsAtFinish)
{
    Assembler as;
    as.j(Cond::AL, "nowhere");
    EXPECT_THROW(as.finish(), PanicError);
}

TEST(Assembler, DuplicateLabelPanicsAtFinish)
{
    // Binding twice is recorded, not fatal on the spot: the panic
    // comes from finish(), so one pass reports every label problem.
    Assembler as;
    as.bind("x");
    as.nop();
    as.bind("x");
    as.halt();
    EXPECT_THROW(as.finish(), PanicError);
}

TEST(Assembler, DiagnosticFinishReportsDuplicateKeepingTheFirst)
{
    Assembler as;
    as.bind("x");
    as.nop();
    as.bind("x");               // second binding at pc 1: ignored
    as.j(Cond::AL, "x");
    Program p;
    std::vector<AsmDiagnostic> diags;
    p = as.finish(diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].where, 1u);
    EXPECT_NE(diags[0].message.find("x"), std::string::npos);
    EXPECT_NE(diags[0].message.find("twice"), std::string::npos);
    EXPECT_EQ(p.entry("x"), 0u);        // first binding wins
    EXPECT_EQ(p.at(2).imm, 0);
}

TEST(Assembler, DiagnosticFinishReportsEveryUndefinedLabel)
{
    Assembler as;
    as.j(Cond::AL, "a");        // pc 0 (+ slot nop)
    as.j(Cond::AL, "b");        // pc 2 (+ slot nop)
    std::vector<AsmDiagnostic> diags;
    Program p = as.finish(diags);
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].where, 0u);
    EXPECT_NE(diags[0].message.find("a"), std::string::npos);
    EXPECT_EQ(diags[1].where, 2u);
    EXPECT_NE(diags[1].message.find("b"), std::string::npos);
    // Unresolved branches are left pointing at 0, not garbage.
    EXPECT_EQ(p.at(0).imm, 0);
    EXPECT_EQ(p.size(), 4u);
}

TEST(Assembler, DiagnosticFinishIsCleanOnAGoodProgram)
{
    Assembler as;
    as.bind("main");
    as.j(Cond::AL, "main");
    std::vector<AsmDiagnostic> diags;
    Program p = as.finish(diags);
    EXPECT_TRUE(diags.empty());
    EXPECT_EQ(p.entry("main"), 0u);
}

TEST(Assembler, FreshLabelsAreUnique)
{
    Assembler as;
    auto a = as.fresh("L");
    auto b = as.fresh("L");
    EXPECT_NE(a, b);
}

TEST(Assembler, BranchEmittersFillDelaySlot)
{
    Assembler as;
    as.bind("t");
    as.j(Cond::AL, "t");
    Program p = as.finish();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(0).op, Opcode::J);
    EXPECT_EQ(p.at(1).op, Opcode::NOP);
}

TEST(Assembler, RawBranchLeavesSlotToCaller)
{
    Assembler as;
    as.bind("t");
    as.jRaw(Cond::AL, "t");
    as.addiR(1, 1, 1);          // caller-scheduled delay slot
    Program p = as.finish();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).op, Opcode::ADD);
}

TEST(Assembler, Table2LoadFlavorsEncodeCorrectly)
{
    Assembler as;
    as.ldtt(1, 2, 0);    // trap on empty, no reset, trap on miss
    as.ldett(1, 2, 0);   // trap on empty, reset, trap on miss
    as.ldnw(1, 2, 0);    // no f/e trap, no reset, wait on miss
    as.ldenw(1, 2, 0);   // reset, wait
    Program p = as.finish();

    EXPECT_TRUE(p.at(0).feTrap);
    EXPECT_FALSE(p.at(0).feModify);
    EXPECT_EQ(p.at(0).miss, MissPolicy::Trap);

    EXPECT_TRUE(p.at(1).feTrap);
    EXPECT_TRUE(p.at(1).feModify);

    EXPECT_FALSE(p.at(2).feTrap);
    EXPECT_EQ(p.at(2).miss, MissPolicy::Wait);

    EXPECT_TRUE(p.at(3).feModify);
    EXPECT_EQ(p.at(3).miss, MissPolicy::Wait);
}

TEST(Assembler, StoreFlavorsAreDuals)
{
    Assembler as;
    as.sttt(1, 2, 0);
    as.stfnw(1, 2, 0);
    Program p = as.finish();
    EXPECT_EQ(p.at(0).op, Opcode::ST);
    EXPECT_TRUE(p.at(0).feTrap);
    EXPECT_TRUE(p.at(1).feModify);
    EXPECT_EQ(p.at(1).miss, MissPolicy::Wait);
}

TEST(Assembler, StrictAndRawComputeFlavors)
{
    Assembler as;
    as.add(1, 2, 3);
    as.addR(1, 2, 3);
    Program p = as.finish();
    EXPECT_TRUE(p.at(0).strict);
    EXPECT_FALSE(p.at(1).strict);
}

TEST(Assembler, MoviLabelFixesUpCodeAddress)
{
    Assembler as;
    as.moviLabel(5, "fn");
    as.halt();
    as.bind("fn");
    as.nop();
    Program p = as.finish();
    EXPECT_EQ(Word(p.at(0).imm), p.entry("fn"));
}

TEST(Assembler, SymbolAtFindsNearestPrecedingLabel)
{
    Assembler as;
    as.bind("alpha");
    as.nop();
    as.nop();
    as.bind("beta");
    as.nop();
    Program p = as.finish();
    EXPECT_EQ(p.symbolAt(1), "alpha+1");
    EXPECT_EQ(p.symbolAt(2), "beta+0");
}

TEST(Assembler, ListingMentionsLabelsAndOpcodes)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 42);
    as.halt();
    Program p = as.finish();
    std::string text = p.listing();
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("movi"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Assembler, FetchPastEndPanics)
{
    Assembler as;
    as.nop();
    Program p = as.finish();
    EXPECT_THROW(p.at(5), PanicError);
}

TEST(Assembler, WordOffsetsMatchTagShift)
{
    EXPECT_EQ(kWordOff, 8);
    EXPECT_EQ(wordOff(3), 24);
}

} // namespace
} // namespace april

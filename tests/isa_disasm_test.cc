/** @file Unit tests for the disassembler and Table 2 mnemonics. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "proc/ports.hh"

namespace april
{
namespace
{

Instruction
firstOf(void (*emit)(Assembler &))
{
    Assembler as;
    emit(as);
    return as.finish().at(0);
}

TEST(Disasm, RegisterNames)
{
    EXPECT_EQ(reg::name(0), "r0");
    EXPECT_EQ(reg::name(31), "r31");
    EXPECT_EQ(reg::name(reg::g(0)), "g0");
    EXPECT_EQ(reg::name(reg::g(7)), "g7");
    EXPECT_EQ(reg::name(reg::t(0)), "t0");
    EXPECT_EQ(reg::name(reg::t(7)), "t7");
}

TEST(Disasm, ComputeFormats)
{
    Instruction i = firstOf(+[](Assembler &a) { a.add(1, 2, 3); });
    EXPECT_EQ(disassemble(i), "add r1, r2, r3");
    i = firstOf(+[](Assembler &a) { a.addiR(1, 2, 5); });
    EXPECT_EQ(disassemble(i), "add.raw r1, r2, 5");
}

TEST(Disasm, Table2LoadMnemonics)
{
    // The exact names from Table 2 must come back out.
    Assembler as;
    as.ldtt(1, 2, 0);
    as.ldett(1, 2, 0);
    as.ldnt(1, 2, 0);
    as.ldent(1, 2, 0);
    as.ldnw(1, 2, 0);
    as.ldenw(1, 2, 0);
    as.ldtw(1, 2, 0);
    as.ldetw(1, 2, 0);
    Program p = as.finish();
    const char *expect[] = {"ldtt", "ldett", "ldnt", "ldent",
                            "ldnw", "ldenw", "ldtw", "ldetw"};
    for (uint32_t k = 0; k < 8; ++k)
        EXPECT_EQ(memFlavorName(p.at(k)), expect[k]) << k;
}

TEST(Disasm, StoreMnemonicsAreDuals)
{
    Assembler as;
    as.sttt(1, 2, 0);
    as.stfnw(1, 2, 0);
    Program p = as.finish();
    EXPECT_EQ(memFlavorName(p.at(0)), "sttt");
    EXPECT_EQ(memFlavorName(p.at(1)), "stfnw");
}

TEST(Disasm, MemoryOperandsRendered)
{
    Instruction i = firstOf(+[](Assembler &a) { a.ldnw(3, 4, 16); });
    EXPECT_EQ(disassemble(i), "ldnw r3, [r4+16]");
    i = firstOf(+[](Assembler &a) { a.stfnw(3, 4, -8); });
    EXPECT_EQ(disassemble(i), "stfnw [r4-8], r3");
}

TEST(Disasm, BranchesShowCondition)
{
    Assembler as;
    as.bind("x");
    as.jRaw(Cond::EMPTY, "x");
    Program p = as.finish();
    EXPECT_EQ(disassemble(p.at(0)), "jempty 0");
}

TEST(Disasm, FrameAndTrapInstructions)
{
    Instruction i;
    i.op = Opcode::INCFP;
    EXPECT_EQ(disassemble(i), "incfp");
    i.op = Opcode::RETT;
    i.imm = 0;
    EXPECT_EQ(disassemble(i), "rett retry");
    i.imm = 1;
    EXPECT_EQ(disassemble(i), "rett skip");
    i = firstOf(+[](Assembler &a) { a.rdspec(5, Spec::TrapArg); });
    EXPECT_EQ(disassemble(i), "rdspec r5, #3");
}

TEST(Disasm, OutOfBandInstructions)
{
    Instruction i = firstOf(+[](Assembler &a) { a.flushLine(2, 0); });
    EXPECT_EQ(disassemble(i), "flush [r2+0]");
    i = firstOf(+[](Assembler &a) {
        a.stio(int(IoReg::ConsoleOut), 1);
    });
    EXPECT_EQ(disassemble(i), "stio io[0], r1");
}

TEST(Disasm, EveryOpcodeRendersMeaningfully)
{
    // Build one instance of every opcode and check the disassembler
    // never falls back to an unknown rendering.
    Assembler as;
    as.bind("all");
    as.add(1, 2, 3);
    as.sub(1, 2, 3);
    as.mul(1, 2, 3);
    as.div(1, 2, 3);
    as.rem(1, 2, 3);
    as.andR(1, 2, 3);
    as.orR(1, 2, 3);
    as.xorR(1, 2, 3);
    as.slliR(1, 2, 3);
    as.srliR(1, 2, 3);
    as.sraiR(1, 2, 3);
    as.movi(1, 42);
    as.ldnw(1, 2, 0);
    as.stnw(1, 2, 0);
    as.tas(1, 2, 0);
    as.jRaw(Cond::AL, "all");
    as.callRaw("all");
    as.incfp();
    as.decfp();
    as.rdfp(1);
    as.stfp(1);
    as.rdpsr(1);
    as.wrpsr(1);
    as.rdspec(1, Spec::TrapPC);
    as.wrspec(Spec::TrapPC, 1);
    as.rdregx(1, 2);
    as.wrregx(1, 2);
    as.rettRetry();
    as.trap(0);
    as.flushLine(1, 0);
    as.rdfence(1);
    as.stio(0, 1);
    as.ldio(1, 0);
    as.halt();
    as.nop();
    Program p = as.finish();
    for (uint32_t pc = 0; pc < p.size(); ++pc) {
        std::string text = disassemble(p.at(pc));
        EXPECT_FALSE(text.empty()) << pc;
        EXPECT_EQ(text.find('?'), std::string::npos)
            << pc << ": " << text;
    }
}

TEST(Disasm, RegisterIndexBoundaries)
{
    EXPECT_EQ(reg::name(47), "t7");
    EXPECT_NE(reg::name(48).find('?'), std::string::npos)
        << "out-of-range names are marked";
}

} // namespace
} // namespace april

/**
 * @file
 * Executable specification of Figure 3: data type encodings.
 *
 * Fixnums end in 00, "other" pointers in 010, cons pointers in 110 and
 * future pointers in 101 — making the LSB a future detector.
 */

#include <gtest/gtest.h>

#include "isa/types.hh"

namespace april
{
namespace
{

using namespace tagged;

TEST(Tags, FixnumLowBitsAreZero)
{
    for (int32_t v : {0, 1, -1, 5, -5, 123456, -123456}) {
        Word w = fixnum(v);
        EXPECT_EQ(w & 0b11, 0u) << "fixnum " << v;
        EXPECT_TRUE(isFixnum(w));
        EXPECT_FALSE(isFuture(w));
    }
}

TEST(Tags, FixnumRoundTripsThroughEncoding)
{
    for (int32_t v : {0, 1, -1, 42, -42, (1 << 29) - 1, -(1 << 29)})
        EXPECT_EQ(toInt(fixnum(v)), v);
}

TEST(Tags, FixnumArithmeticIsTagPreserving)
{
    // ADD/SUB work directly on tagged fixnums: the 00 tags cancel.
    EXPECT_EQ(fixnum(3) + fixnum(4), fixnum(7));
    EXPECT_EQ(fixnum(3) - fixnum(10), fixnum(-7));
}

TEST(Tags, FigureThreeEncodings)
{
    EXPECT_EQ(tagBits(ptr(100, Tag::Other)), 0b010);
    EXPECT_EQ(tagBits(ptr(100, Tag::Cons)), 0b110);
    EXPECT_EQ(tagBits(ptr(100, Tag::Future)), 0b101);
}

TEST(Tags, FutureDetectionIsTheLsb)
{
    // "Future pointers are easily detected by their non-zero least
    // significant bit" (Section 4).
    EXPECT_TRUE(isFuture(ptr(77, Tag::Future)));
    EXPECT_FALSE(isFuture(ptr(77, Tag::Cons)));
    EXPECT_FALSE(isFuture(ptr(77, Tag::Other)));
    EXPECT_FALSE(isFuture(fixnum(-9)));
}

TEST(Tags, PointerAddressRoundTrips)
{
    for (Addr a : {Addr(16), Addr(12345), Addr(1u << 28)}) {
        EXPECT_EQ(ptrAddr(ptr(a, Tag::Cons)), a);
        EXPECT_EQ(ptrAddr(ptr(a, Tag::Future)), a);
        EXPECT_EQ(ptrAddr(ptr(a, Tag::Other)), a);
    }
}

TEST(Tags, ImmediatesAreDistinct)
{
    EXPECT_NE(NIL, FALSE);
    EXPECT_NE(NIL, TRUE);
    EXPECT_NE(FALSE, TRUE);
    EXPECT_NE(UNDEF, NIL);
    // All live below the reserved allocation floor.
    EXPECT_LT(ptrAddr(NIL), reservedWords);
    EXPECT_LT(ptrAddr(UNDEF), reservedWords);
}

TEST(Tags, Truthiness)
{
    EXPECT_FALSE(isTruthy(FALSE));
    EXPECT_FALSE(isTruthy(NIL));
    EXPECT_TRUE(isTruthy(TRUE));
    EXPECT_TRUE(isTruthy(fixnum(0)));   // 0 is true in Lisp
    EXPECT_TRUE(isTruthy(ptr(99, Tag::Cons)));
}

TEST(Tags, ToStringRendersTypes)
{
    EXPECT_EQ(toString(fixnum(42)), "42");
    EXPECT_EQ(toString(NIL), "nil");
    EXPECT_EQ(toString(TRUE), "#t");
    EXPECT_EQ(toString(FALSE), "#f");
    EXPECT_EQ(toString(ptr(20, Tag::Future)), "future@20");
    EXPECT_EQ(toString(ptr(20, Tag::Cons)), "cons@20");
}

TEST(Tags, BooleanHelper)
{
    EXPECT_EQ(boolean(true), TRUE);
    EXPECT_EQ(boolean(false), FALSE);
}

} // namespace
} // namespace april

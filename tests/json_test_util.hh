/**
 * @file
 * Test alias for the minimal JSON parser. The parser itself now lives
 * in src/common/json_parse.hh (april-prof uses it for --diff and
 * schema validation); tests keep their historical april::testutil
 * spelling via these aliases.
 */

#ifndef APRIL_TESTS_JSON_TEST_UTIL_HH
#define APRIL_TESTS_JSON_TEST_UTIL_HH

#include "common/json_parse.hh"

namespace april::testutil
{

using Json = april::json::Json;
using JsonParser = april::json::JsonParser;
using april::json::parseJson;

} // namespace april::testutil

#endif // APRIL_TESTS_JSON_TEST_UTIL_HH

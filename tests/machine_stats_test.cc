/**
 * @file
 * The statistics tree of a full machine run: every subsystem reports
 * through one nested stats::Group dump (processors, caches,
 * controllers, network), and the derived utilization formula holds.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/workloads.hh"

namespace april
{
namespace
{

TEST(MachineStats, DumpCoversEverySubsystem)
{
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Eager;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(9));
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    AlewifeMachine m(p, &prog);
    m.run(50'000'000);
    ASSERT_TRUE(m.halted());

    std::ostringstream os;
    m.dump(os);
    std::string out = os.str();
    for (const char *key :
         {"alewife.network.packets", "alewife.network.latency",
          "alewife.ctrl0.cache.hits", "alewife.ctrl3.remoteMisses",
          "alewife.proc0.cycles", "alewife.proc0.utilization",
          "alewife.proc2.contextSwitches"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(MachineStats, UtilizationFormulaIsConsistent)
{
    mult::CompileOptions copts;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource("(define (main) (+ 1 2))");
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 1, .radix = 2};
    AlewifeMachine m(p, &prog);
    m.run(1'000'000);
    ASSERT_TRUE(m.halted());

    // Utilization is defined on the cycle accountant (§7.5): the
    // fraction of cycles doing useful work, pipeline hazards included
    // (the paper's U counts issue slots the thread itself occupies).
    Processor &proc = m.proc(0);
    double useful = proc.bucketCycles(profile::Bucket::Useful);
    double hazard = proc.bucketCycles(profile::Bucket::Hazard);
    EXPECT_NEAR(proc.statUtilization.value(),
                (useful + hazard) / proc.statCycles.value(), 1e-12);
    EXPECT_GT(proc.statUtilization.value(), 0.0);
    EXPECT_LE(proc.statUtilization.value(), 1.0);
    // Useful cycles never exceed completed instructions and together
    // the buckets account for every cycle.
    EXPECT_LE(useful, proc.statInsts.value());
    proc.verifyCycleAccounting();
}

TEST(MachineStats, ResetClearsTheWholeTree)
{
    mult::CompileOptions copts;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource("(define (main) 7)");
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 1, .radix = 2};
    AlewifeMachine m(p, &prog);
    m.run(1'000'000);
    ASSERT_TRUE(m.halted());
    EXPECT_GT(m.proc(0).statCycles.value(), 0.0);

    m.resetStats();
    EXPECT_EQ(m.proc(0).statCycles.value(), 0.0);
    EXPECT_EQ(m.network().statPackets.value(), 0.0);
    EXPECT_EQ(m.controller(0).cacheRef().statHits.value(), 0.0);
}

} // namespace
} // namespace april

/**
 * @file
 * Tests for the april-mc protocol model checker: the exhaustive
 * explorer is clean for every directory scheme, the mutation gate
 * catches a planted rule bug (the checker checks itself), rule
 * coverage is as designed, and the cohTrace replay checker accepts
 * well-formed traces and rejects malformed ones.
 */

#include <gtest/gtest.h>

#include "mc/explore.hh"
#include "mc/replay.hh"
#include "mc/spec.hh"

namespace april::mc
{
namespace
{

ExploreParams
params(coh::DirScheme scheme, uint32_t nodes, uint32_t pointers = 4)
{
    ExploreParams p;
    p.spec.scheme = scheme;
    p.spec.dirPointers = pointers;
    p.nodes = nodes;
    return p;
}

TEST(McExplore, FullMapTwoNodesIsClean)
{
    ExploreResult r = explore(params(coh::DirScheme::FullMap, 2));
    EXPECT_TRUE(r.ok()) << (r.violations.empty()
                                ? "capped"
                                : r.violations[0].kind + ": " +
                                      r.violations[0].detail);
    EXPECT_FALSE(r.capped);
    // The 2-node machine is small but not trivial: thousands of
    // states, a BFS deep enough to hold the raced-writeback
    // interleavings.
    EXPECT_GT(r.states, 1000u);
    EXPECT_GT(r.transitions, r.states);
    EXPECT_GE(r.diameter, 12u);
    EXPECT_FALSE(summarize(params(coh::DirScheme::FullMap, 2), r)
                     .empty());
}

TEST(McExplore, LimitedPtrTwoNodesIsClean)
{
    ExploreResult r =
        explore(params(coh::DirScheme::LimitedPtr, 2, /*pointers=*/1));
    EXPECT_TRUE(r.ok()) << (r.violations.empty()
                                ? "capped"
                                : r.violations[0].kind + ": " +
                                      r.violations[0].detail);
}

TEST(McExplore, StateCapIsReportedNotSilent)
{
    ExploreParams p = params(coh::DirScheme::FullMap, 3);
    p.maxStates = 100;
    p.checkLiveness = false;    // a capped frontier is not a deadlock
    ExploreResult r = explore(p);
    EXPECT_TRUE(r.capped);
    EXPECT_FALSE(r.ok());
    EXPECT_LE(r.states, 100u + 64u);    // cap plus one BFS batch
}

TEST(McExplore, MutationGateCatchesAPlantedRuleBug)
{
    // CI's checker-checks-itself gate: rotate the resulting directory
    // state of R5 (uncached write grant) after every firing. The
    // explorer must find a violation and produce a counterexample.
    ExploreParams p = params(coh::DirScheme::FullMap, 2);
    p.spec.mutateRule = 5;
    p.checkLiveness = false;    // the safety violation fires first
    ExploreResult r = explore(p);
    ASSERT_FALSE(r.violations.empty())
        << "planted bug in dir rule 5 was not caught";
    const Violation &v = r.violations[0];
    EXPECT_FALSE(v.kind.empty());
    EXPECT_FALSE(v.trace.empty())
        << "violation has no counterexample trace";
    // BFS traces are shortest-in-steps; the planted R5 bug is
    // reachable within a handful of messages.
    EXPECT_LE(v.trace.size(), 16u);
}

TEST(McExplore, RuleCoverageMatchesTheDesign)
{
    // LimitedPtr with a single hardware pointer at 3 nodes drives
    // every path: grants, recalls, invalidation collection, raced
    // writebacks, pointer spill and the spill walk.
    ExploreResult r =
        explore(params(coh::DirScheme::LimitedPtr, 3, /*pointers=*/1));
    ASSERT_TRUE(r.ok());
    for (size_t i = 0; i < kNumDirRules; ++i) {
        if (i == 13) {
            // R13 (ack-stale fold) is intentionally unreachable: the
            // inv/ack balance invariant — checked on every state —
            // guarantees every InvAck is consumed inside its
            // collection window. The controller keeps the branch as
            // defense in depth; the spec keeps the row so conformance
            // and the explorer agree on rule numbering.
            EXPECT_EQ(r.dirRuleFires[i], 0u)
                << "R13 became reachable; its unreachability proof "
                   "no longer holds";
            continue;
        }
        EXPECT_GT(r.dirRuleFires[i], 0u)
            << "dir rule " << i << " (" << dirRules()[i].name
            << ") never fired";
    }
    for (size_t i = 0; i < kNumCacheRules; ++i) {
        EXPECT_GT(r.cacheRuleFires[i], 0u)
            << "cache rule " << i << " (" << cacheRules()[i].name
            << ") never fired";
    }
}

// ---------------------------------------------------------------------
// cohTrace replay checker
// ---------------------------------------------------------------------

// id 4294967297 = (requester 1) << 32 | seq 1.
const char *const kGoodTrace = R"({
  "schemaVersion": 1,
  "dropped": 0,
  "transactions": [
    {
      "id": 4294967297,
      "home": 0,
      "complete": 1,
      "invs": 1,
      "acks": 1,
      "events": [
        {"c": 0,  "n": 1, "ph": "Issue"},
        {"c": 4,  "n": 0, "ph": "HomeHandle"},
        {"c": 5,  "n": 0, "ph": "InvSend"},
        {"c": 9,  "n": 0, "ph": "InvAck"},
        {"c": 10, "n": 0, "ph": "ReplySend"},
        {"c": 14, "n": 1, "ph": "Fill"}
      ]
    }
  ]
})";

TEST(McReplay, AcceptsAWellFormedTrace)
{
    ReplayResult r = replayCohTrace(kGoodTrace);
    EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "?" : r.errors[0]);
    EXPECT_EQ(r.transactions, 1u);
    EXPECT_EQ(r.complete, 1u);
    EXPECT_EQ(r.events, 6u);
    EXPECT_NE(summarizeReplay(r).find("clean"), std::string::npos);
}

TEST(McReplay, RejectsAFillWithoutAnIssue)
{
    ReplayResult r = replayCohTrace(R"({
      "schemaVersion": 1,
      "transactions": [
        {
          "id": 4294967297,
          "home": 0,
          "complete": 1,
          "events": [
            {"c": 4,  "n": 0, "ph": "HomeHandle"},
            {"c": 10, "n": 0, "ph": "ReplySend"},
            {"c": 14, "n": 1, "ph": "Fill"}
          ]
        }
      ]
    })");
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.errors.empty());
}

TEST(McReplay, RejectsAMisattributedLeg)
{
    // The ReplySend is recorded by node 2, not the home — the span
    // shape pins every home-side leg to the home node.
    ReplayResult r = replayCohTrace(R"({
      "schemaVersion": 1,
      "transactions": [
        {
          "id": 4294967297,
          "home": 0,
          "complete": 1,
          "events": [
            {"c": 0,  "n": 1, "ph": "Issue"},
            {"c": 4,  "n": 0, "ph": "HomeHandle"},
            {"c": 10, "n": 2, "ph": "ReplySend"},
            {"c": 14, "n": 1, "ph": "Fill"}
          ]
        }
      ]
    })");
    EXPECT_FALSE(r.ok());
}

TEST(McReplay, RefusesATraceWithDroppedLegs)
{
    ReplayResult r = replayCohTrace(
        R"({"schemaVersion": 1, "dropped": 5, "transactions": []})");
    EXPECT_TRUE(r.refused);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(summarizeReplay(r).find("refused"), std::string::npos);
}

TEST(McReplay, RejectsWrongSchemaVersionAndGarbage)
{
    EXPECT_FALSE(replayCohTrace(
                     R"({"schemaVersion": 2, "transactions": []})")
                     .ok());
    EXPECT_FALSE(replayCohTrace("not json at all").ok());
}

} // namespace
} // namespace april::mc

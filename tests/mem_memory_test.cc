/** @file Unit tests for the distributed shared memory image. */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace april
{
namespace
{

TEST(Memory, ReadWriteRoundTrip)
{
    SharedMemory m({.numNodes = 1, .wordsPerNode = 1024});
    m.write(10, 0xDEADBEEF);
    EXPECT_EQ(m.read(10), 0xDEADBEEFu);
}

TEST(Memory, WordsStartFull)
{
    // Normal data is "full"; empty is the synchronization state.
    SharedMemory m({.numNodes = 1, .wordsPerNode = 64});
    EXPECT_TRUE(m.isFull(0));
    EXPECT_TRUE(m.isFull(63));
}

TEST(Memory, FullEmptyBitPerWord)
{
    SharedMemory m({.numNodes = 1, .wordsPerNode = 64});
    m.setFull(5, false);
    EXPECT_FALSE(m.isFull(5));
    EXPECT_TRUE(m.isFull(6));
    m.writeFe(5, 7, true);
    EXPECT_TRUE(m.isFull(5));
    EXPECT_EQ(m.read(5), 7u);
}

TEST(Memory, HomeNodeIsAddressSegment)
{
    SharedMemory m({.numNodes = 4, .wordsPerNode = 100});
    EXPECT_EQ(m.homeNode(0), 0u);
    EXPECT_EQ(m.homeNode(99), 0u);
    EXPECT_EQ(m.homeNode(100), 1u);
    EXPECT_EQ(m.homeNode(399), 3u);
    EXPECT_EQ(m.nodeBase(2), 200u);
}

TEST(Memory, OutOfRangePanics)
{
    SharedMemory m({.numNodes = 2, .wordsPerNode = 16});
    EXPECT_THROW(m.read(32), PanicError);
    EXPECT_THROW(m.nodeBase(2), PanicError);
}

TEST(Memory, ZeroConfigIsFatal)
{
    EXPECT_THROW(SharedMemory({.numNodes = 0, .wordsPerNode = 16}),
                 FatalError);
}

TEST(Memory, SizeWords)
{
    SharedMemory m({.numNodes = 3, .wordsPerNode = 50});
    EXPECT_EQ(m.sizeWords(), 150u);
}

} // namespace
} // namespace april

/**
 * @file
 * The 2-D mesh with dimension-ordered routing. Asserts the hop count
 * of every node pair equals the Manhattan distance on 4x4 and 8x8
 * meshes, that an all-to-all burst drains without deadlock (every
 * packet gets a finite arrival respecting the zero-load bound and
 * source-link serialization), and that the machine's per-hop-distance
 * telemetry histograms reflect distance: a message that crossed d
 * hops can never be delivered faster than d switch traversals plus
 * its flit drain.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>

#include "machine/alewife_machine.hh"
#include "network/network.hh"
#include "workloads/handwritten.hh"

namespace april
{
namespace
{

TEST(MeshRouting, HopCountsMatchManhattanDistance)
{
    for (int radix : {4, 8}) {
        net::NetworkParams np;
        np.dim = 2;
        np.radix = radix;
        net::Network net(np);
        uint32_t n = net.numNodes();
        ASSERT_EQ(n, uint32_t(radix * radix));
        EXPECT_EQ(net.maxHops(), uint32_t(2 * (radix - 1)));

        for (uint32_t a = 0; a < n; ++a) {
            int ax = int(a) % radix, ay = int(a) / radix;
            for (uint32_t b = 0; b < n; ++b) {
                int bx = int(b) % radix, by = int(b) / radix;
                uint32_t manhattan =
                    uint32_t(std::abs(ax - bx) + std::abs(ay - by));
                EXPECT_EQ(net.distance(a, b), manhattan)
                    << a << " -> " << b << " on " << radix << "x"
                    << radix;
                EXPECT_LE(manhattan, net.maxHops());
            }
        }
    }
}

TEST(MeshRouting, InjectionTimingIsHopBased)
{
    net::NetworkParams np;
    np.dim = 2;
    np.radix = 4;
    np.hopCycles = 3;
    net::Network net(np);

    // An uncontended packet: exactly hops * hopCycles + flits.
    net::Injection inj = net.inject(0, 15, 2, 100);
    EXPECT_EQ(inj.start, 100u);
    EXPECT_EQ(inj.hops, 6u);
    EXPECT_EQ(inj.arrive, 100 + 6 * 3 + 2u);

    // Same first-hop link (dimension order: +x first): serializes.
    net::Injection second = net.inject(0, 3, 2, 100);
    EXPECT_EQ(second.start, 102u);

    // Different first-hop link (+y): pipelines in parallel.
    net::Injection other = net.inject(0, 12, 2, 100);
    EXPECT_EQ(other.start, 100u);
}

TEST(MeshRouting, AllToAllBurstDrainsWithoutDeadlock)
{
    net::NetworkParams np;
    np.dim = 2;
    np.radix = 4;
    net::Network net(np);
    uint32_t n = net.numNodes();
    constexpr uint32_t kFlits = 2;

    // Every node fires a packet at every other node in one cycle.
    // The endpoint contention model must hand each one a finite
    // arrival no earlier than its zero-load bound, with starts on any
    // one source link strictly serialized.
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> link_busy;
    uint64_t last_arrival = 0;
    for (uint32_t src = 0; src < n; ++src) {
        for (uint32_t dst = 0; dst < n; ++dst) {
            if (src == dst)
                continue;
            net::Injection inj = net.inject(src, dst, kFlits, 0);
            uint32_t d = net.distance(src, dst);
            EXPECT_EQ(inj.hops, d);
            EXPECT_GE(inj.arrive, inj.start + d + kFlits);

            // First-hop link: lowest differing dimension.
            int sx = int(src) % np.radix, sy = int(src) / np.radix;
            int dx = int(dst) % np.radix, dy = int(dst) / np.radix;
            uint32_t link = sx != dx ? (dx > sx ? 1 : 0)
                                     : (dy > sy ? 3 : 2);
            uint64_t &busy = link_busy[{src, link}];
            EXPECT_GE(inj.start, busy) << src << " -> " << dst;
            busy = inj.start + kFlits;
            last_arrival = std::max(last_arrival, inj.arrive);
        }
    }
    // 16 nodes x 15 packets all drain within a bounded horizon: each
    // source serializes at most 15 two-flit packets over 4 links,
    // plus the corner-to-corner flight time.
    EXPECT_LE(last_arrival, uint64_t(15 * kFlits + 6 + kFlits));
}

TEST(MeshRouting, TelemetryHopHistogramsReflectDistance)
{
    // Machine-level all-to-all-ish traffic: the wide-sharing workload
    // on a 4x4 mesh (every node talks to node 0's home directory and
    // to its own segment). After the run the telemetry's per-distance
    // latency histograms must respect the mesh: messages that crossed
    // d hops took at least d * hopCycles + flits cycles, and farther
    // distances have strictly larger minimum latency.
    workloads::WideSharing w = workloads::buildWideSharing(16, 1u << 14);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 4};
    p.wordsPerNode = w.wordsPerNode;
    p.bootRuntime = false;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    auto m = std::make_unique<AlewifeMachine>(p, &w.prog);
    for (uint32_t n = 0; n < m->numNodes(); ++n)
        workloads::bootCoherentNode(m->proc(n), w.prog);
    m->run(100'000'000);
    ASSERT_TRUE(m->halted());
    ASSERT_TRUE(m->quiesce(1'000'000));

    net::Telemetry &tel = m->telemetry();
    ASSERT_EQ(tel.maxHops(), 6u);

    const uint32_t hop_cycles = m->network().hopCycles();
    const uint32_t min_flits = 2;   // reqFlits
    uint64_t histogram_total = 0;
    uint32_t distances_seen = 0;
    for (uint32_t d = 0; d <= tel.maxHops(); ++d) {
        const stats::Histogram &h = tel.hopLatency(d);
        histogram_total += h.count();
        if (!h.count())
            continue;
        ++distances_seen;
        // A message that crossed d hops can't beat d switch
        // traversals plus the smallest (request-sized) flit drain.
        EXPECT_GE(h.min(), int64_t(d * hop_cycles + min_flits))
            << "hop distance " << d;
    }
    // The workload reaches several distinct distances (node 0's home
    // serves sharers from 1, 2, ... hops away), every delivered
    // message landed in exactly one per-distance histogram, and the
    // aggregate hop distribution agrees.
    EXPECT_GE(distances_seen, 3u);
    EXPECT_EQ(histogram_total, uint64_t(tel.statDelivered.value()));
    EXPECT_EQ(tel.statHops.count(), histogram_total);
}

} // namespace
} // namespace april

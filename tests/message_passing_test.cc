/**
 * @file
 * Section 3.4's multi-model support: "interprocessor-interrupts ...
 * in conjunction with block-transfers, form a primitive for the
 * message-passing computational model."
 *
 * Node 0 composes a message in its local memory, block-transfers it
 * into node 1's region, and raises an IPI; node 1's asynchronous trap
 * handler consumes the message and replies through a full/empty
 * mailbox word. No shared-memory polling is involved on the sender's
 * critical path.
 */

#include <gtest/gtest.h>

#include "machine/alewife_machine.hh"

namespace april
{
namespace
{

using namespace tagged;

constexpr int kLen = 8;

TEST(MessagePassing, IpiPlusBlockTransferDelivery)
{
    AlewifeParams p;
    p.network = {.dim = 1, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    Addr src = 1024;                    // node 0's compose buffer
    Addr dst = p.wordsPerNode + 2048;   // inside node 1's region
    Addr ack = 512;                     // mailbox homed on node 0

    Assembler as;
    as.bind("node0");
    // Compose the message: words i*i.
    as.movi(1, ptr(src, Tag::Other));
    as.movi(2, 0);
    as.bind("compose");
    as.mulR(3, 2, 2);
    as.slliR(3, 3, 2);
    as.stnw(3, 1, 0);
    as.addiR(1, 1, kWordOff);
    as.addiR(2, 2, 1);
    as.cmpiR(2, kLen);
    as.jRaw(Cond::LT, "compose");
    as.nop();
    // Ship it: block transfer, then interrupt the receiver.
    as.movi(4, src);
    as.stio(int(IoReg::BlockSrc), 4);
    as.movi(4, dst);
    as.stio(int(IoReg::BlockDst), 4);
    as.movi(4, kLen);
    as.stio(int(IoReg::BlockGo), 4);
    as.movi(4, 1);
    as.stio(int(IoReg::IpiDest), 4);
    as.movi(4, fixnum(kLen));           // IPI argument: message length
    as.stio(int(IoReg::IpiSend), 4);
    // Await the reply through the f/e mailbox.
    as.movi(5, ptr(ack, Tag::Other));
    as.bind("await");
    as.ldnw(6, 5, 0);
    as.jRaw(Cond::EMPTY, "await");
    as.nop();
    as.halt();

    as.bind("node1");                   // idles until interrupted
    as.movi(1, 0);
    as.bind("idle");
    as.addiR(1, 1, 1);
    as.j(Cond::AL, "idle");

    as.bind("ipi_handler");             // sum the message, reply
    as.rdspec(reg::t(1), Spec::TrapArg);
    as.sraiR(reg::t(1), reg::t(1), 2);  // message length
    as.movi(reg::t(2), ptr(dst, Tag::Other));
    as.movi(reg::t(3), 0);
    as.movi(reg::t(4), 0);
    as.bind("sum");
    as.load(reg::t(5), reg::t(2), 0, false, false, MissPolicy::Wait,
            false);
    as.addR(reg::t(4), reg::t(4), reg::t(5));
    as.addiR(reg::t(2), reg::t(2), kWordOff);
    as.addiR(reg::t(3), reg::t(3), 1);
    as.cmpR(reg::t(3), reg::t(1));
    as.jRaw(Cond::LT, "sum");
    as.nop();
    as.movi(reg::t(6), ptr(ack, Tag::Other));
    as.stfnw(reg::t(4), reg::t(6), 0);  // reply: store + set full
    as.rettRetry();
    Program prog = as.finish();

    AlewifeMachine m(p, &prog);
    m.memory().setFull(ack, false);
    for (int n = 0; n < 2; ++n) {
        m.proc(uint32_t(n)).reset(
            prog.entry(n == 0 ? "node0" : "node1"));
        m.proc(uint32_t(n)).setTrapVector(TrapKind::Ipi,
                                          prog.entry("ipi_handler"));
    }

    for (uint64_t c = 0; c < 200000 && !m.proc(0).halted(); ++c)
        m.tick();
    ASSERT_TRUE(m.proc(0).halted());

    int64_t expect = 0;
    for (int i = 0; i < kLen; ++i)
        expect += fixnum(int32_t(i * i));
    EXPECT_EQ(int64_t(m.proc(0).readReg(6)), expect)
        << "receiver summed the transferred message";
    // The receiver really was preempted (not polling).
    EXPECT_EQ(m.proc(1).statTraps[size_t(TrapKind::Ipi)].value(), 1.0);
}

} // namespace
} // namespace april

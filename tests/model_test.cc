/**
 * @file
 * Tests of the Section 8 analytical model against the paper's stated
 * anchors and Equation 1's structural properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "model/scalability.hh"

namespace april::model
{
namespace
{

TEST(Model, Table4BaseLatencyIs55)
{
    // "an average round trip network latency of 55 cycles for an
    // unloaded network" with the Table 4 default parameters.
    ScalabilityModel m;
    EXPECT_DOUBLE_EQ(m.baseLatency(), 55.0);
}

TEST(Model, AvgHopsIs20)
{
    // "the average number of hops between a random pair of nodes is
    // nk/3 = 20" for n = 3, k = 20.
    ScalabilityModel m;
    EXPECT_DOUBLE_EQ(m.avgHops(), 20.0);
}

TEST(Model, ForSimMeshDerivesHopTerms)
{
    // The simulated-machine re-derivation (DESIGN.md §7.8): a 2-D
    // mesh of p nodes has radix sqrt(p), average distance 2 sqrt(p)/3
    // hops, and T(1) = 2 h + M + (B - 1) + ctl with the simulator's
    // 1-cycle hops, 10-cycle DRAM, 4-flit mean packet and 2-cycle
    // controller occupancy.
    for (unsigned nodes : {64u, 256u, 1024u}) {
        ModelParams p = ModelParams::forSimMesh(nodes);
        ScalabilityModel m(p);
        double k = std::sqrt(double(nodes));
        EXPECT_EQ(p.netDim, 2);
        EXPECT_DOUBLE_EQ(double(p.netRadix), k);
        EXPECT_DOUBLE_EQ(m.avgHops(), 2.0 * k / 3.0);
        EXPECT_DOUBLE_EQ(m.baseLatency(), 2.0 * (2.0 * k / 3.0) +
                                          10.0 + 3.0 + 2.0);
    }
    // T(p)'s hop term grows with the mesh: a 1024-node machine pays
    // a longer unloaded round trip than a 64-node one.
    EXPECT_GT(ScalabilityModel(ModelParams::forSimMesh(1024))
                  .baseLatency(),
              ScalabilityModel(ModelParams::forSimMesh(64))
                  .baseLatency());
    EXPECT_THROW(ModelParams::forSimMesh(48), FatalError);
}

TEST(Model, SingleThreadUtilization)
{
    // U(1) = 1 / (1 + m(1) T(1)) = 1 / (1 + 0.02 * 55) ~ 0.476.
    // The fixed point loads the network slightly even at p = 1, so
    // allow a small deviation from the unloaded-T anchor.
    ScalabilityModel m;
    EXPECT_NEAR(m.utilization(1), 1.0 / (1.0 + 0.02 * 55.0), 0.035);
}

TEST(Model, EightyPercentWithThreeThreads)
{
    // The headline claim: "close to 80% processor utilization with as
    // few as three resident threads per processor" at C = 10.
    ScalabilityModel m;
    EXPECT_NEAR(m.utilization(3), 0.80, 0.03);
}

TEST(Model, UtilizationCapNearEighty)
{
    // "utilization limited to a maximum of about 0.80 despite an
    // ample supply of threads".
    ScalabilityModel m;
    for (double p = 3; p <= 8; p += 1)
        EXPECT_LT(m.utilization(p), 0.84) << "p=" << p;
}

TEST(Model, MarginalBenefitDecreases)
{
    // "The marginal benefits of additional processes is seen to
    // decrease due to network and cache interference."
    ScalabilityModel m;
    double g12 = m.utilization(2) - m.utilization(1);
    double g23 = m.utilization(3) - m.utilization(2);
    double g45 = m.utilization(5) - m.utilization(4);
    EXPECT_GT(g12, g23);
    EXPECT_GT(g23, g45);
}

TEST(Model, MissRateIsFixedPlusLinear)
{
    // m(p) = fixed + (to first order) linear component.
    ScalabilityModel m;
    EXPECT_DOUBLE_EQ(m.missRate(1), 0.02);
    double d1 = m.missRate(2) - m.missRate(1);
    double d2 = m.missRate(3) - m.missRate(2);
    EXPECT_GT(d1, 0);
    EXPECT_NEAR(d2 / d1, 1.0, 0.2) << "approximately linear";
}

TEST(Model, DecompositionOrdering)
{
    // Figure 5's curves must nest: useful work <= no-switch <=
    // fixed-cache <= ideal, for every p.
    ScalabilityModel m;
    for (double p = 1; p <= 8; p += 1) {
        double full = m.utilization(p);
        double nosw = m.utilizationNoSwitch(p);
        double fixc = m.utilizationFixedCache(p);
        double ideal = m.utilizationIdeal(p);
        EXPECT_LE(full, nosw + 1e-9) << p;
        EXPECT_LE(nosw, fixc + 1e-9) << p;
        EXPECT_LE(fixc, ideal + 1e-9) << p;
    }
}

TEST(Model, IdealReachesFullUtilization)
{
    // With per-thread costs pinned at p = 1, enough threads fully
    // hide the latency (the Ideal curve approaches 1.0).
    ScalabilityModel m;
    EXPECT_NEAR(m.utilizationIdeal(8), 1.0, 0.05);
}

TEST(Model, UtilizationMonotoneBeforeSaturation)
{
    ScalabilityModel m;
    EXPECT_LT(m.utilization(1), m.utilization(2));
    EXPECT_LT(m.utilization(2), m.utilization(3));
}

TEST(Model, SwitchOverheadInsensitivity)
{
    // "The relatively large ten-cycle context switch overhead does
    // not significantly impact performance ... because utilization
    // depends on the product of context switching frequency and
    // switching overhead, and the switching frequency is expected to
    // be small in a cache-based system."
    ModelParams p4;
    p4.switchOverhead = 4;
    ModelParams p10;
    p10.switchOverhead = 10;
    double u4 = ScalabilityModel(p4).utilization(3);
    double u10 = ScalabilityModel(p10).utilization(3);
    EXPECT_LT(u4 - u10, 0.13);
    EXPECT_GT(u4, u10);
}

TEST(Model, LargeSwitchOverheadDoesMatter)
{
    // Conversely a very expensive switch (fine-grain rate with a
    // heavyweight mechanism) depresses the plateau: utilization
    // depends on the product C * m.
    ModelParams heavy;
    heavy.switchOverhead = 100;
    double u10 = ScalabilityModel{}.utilization(4);
    double u100 = ScalabilityModel(heavy).utilization(4);
    EXPECT_GT(u10 - u100, 0.25);
}

TEST(Model, SmallCachesSufferInterference)
{
    // "caches greater than 64 Kbytes comfortably sustain the working
    // sets of four processes. Smaller caches suffer more
    // interference and reduce the benefits of multithreading."
    ModelParams small;
    small.cacheBytes = 8 * 1024;
    ModelParams big;
    big.cacheBytes = 64 * 1024;
    double u_small = ScalabilityModel(small).utilization(4);
    double u_big = ScalabilityModel(big).utilization(4);
    EXPECT_GT(u_big - u_small, 0.10);

    ModelParams huge;
    huge.cacheBytes = 256 * 1024;
    double u_huge = ScalabilityModel(huge).utilization(4);
    EXPECT_LT(u_huge - u_big, 0.05) << "64 KB is already comfortable";
}

TEST(Model, BandwidthBoundsUtilization)
{
    // When each thread demands more bandwidth (bigger packets), the
    // network caps utilization: "available network bandwidth limits
    // the maximum rate at which computation can proceed".
    ModelParams fat;
    fat.packetSize = 24;
    fat.fixedMissRate = 0.08;
    ScalabilityModel m(fat);
    auto pt = m.evaluate(8);
    EXPECT_TRUE(pt.bandwidthBound);
    EXPECT_LT(pt.utilization, 0.5);
}

TEST(Model, SystemPower)
{
    ScalabilityModel m;
    EXPECT_NEAR(m.systemPower(3, 8000), 8000 * m.utilization(3), 1e-9);
}

TEST(Model, BadParamsAreFatal)
{
    ModelParams p;
    p.fixedMissRate = 0;
    EXPECT_THROW(ScalabilityModel{p}, FatalError);
}

TEST(Model, LatencyGrowsWithLoad)
{
    ScalabilityModel m;
    EXPECT_GT(m.loadedLatency(0.5), m.baseLatency());
    EXPECT_GT(m.loadedLatency(0.9), m.loadedLatency(0.5));
    EXPECT_DOUBLE_EQ(m.loadedLatency(0.0), m.baseLatency());
}

class ModelSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ModelSweep, PointIsConsistent)
{
    ScalabilityModel m;
    double p = GetParam();
    auto pt = m.evaluate(p);
    EXPECT_GT(pt.utilization, 0.0);
    EXPECT_LE(pt.utilization, 1.0);
    EXPECT_GE(pt.latency, m.baseLatency());
    EXPECT_GE(pt.missRate, m.params().fixedMissRate);
    EXPECT_GE(pt.channelRho, 0.0);
    EXPECT_LE(pt.channelRho, m.params().rhoMax + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(OneToTwelve, ModelSweep,
                         ::testing::Range(1, 13));

TEST(Model, UtilizationMeasuredIsClosedFormEquationOne)
{
    // Below p* = (1 + Tm)/(1 + Cm) the processor runs out of threads
    // to switch to: U = p/(1 + Tm). Above it the switch overhead per
    // miss is the limit: U = 1/(1 + Cm).
    double m = 0.04, t = 55, c = 11;
    double pstar = (1 + t * m) / (1 + c * m);
    EXPECT_NEAR(pstar, 2.2222, 1e-3);
    EXPECT_DOUBLE_EQ(ScalabilityModel::utilizationMeasured(1, m, t, c),
                     1 / (1 + t * m));
    EXPECT_DOUBLE_EQ(ScalabilityModel::utilizationMeasured(2, m, t, c),
                     2 / (1 + t * m));
    EXPECT_DOUBLE_EQ(ScalabilityModel::utilizationMeasured(3, m, t, c),
                     1 / (1 + c * m));
    EXPECT_DOUBLE_EQ(ScalabilityModel::utilizationMeasured(8, m, t, c),
                     1 / (1 + c * m));
    // Utilization saturates at 1 when there is nothing to hide.
    EXPECT_DOUBLE_EQ(ScalabilityModel::utilizationMeasured(4, 0, 0, 0),
                     1.0);
    // Monotone non-decreasing in p for fixed m, T, C.
    for (int p = 1; p < 12; ++p) {
        EXPECT_LE(ScalabilityModel::utilizationMeasured(p, m, t, c),
                  ScalabilityModel::utilizationMeasured(p + 1, m, t, c));
    }
}

} // namespace
} // namespace april::model

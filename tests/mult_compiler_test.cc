/**
 * @file
 * End-to-end Mul-T compiler tests: programs compiled in sequential
 * ("T seq") mode and executed on one APRIL processor with the full
 * run-time system resident.
 */

#include <gtest/gtest.h>

#include "test_support/mult_run.hh"

namespace april
{
namespace
{

using testutil::runMult;
using tagged::fixnum;

TEST(MultCompiler, ConstantMain)
{
    auto r = runMult("(define (main) 42)");
    EXPECT_EQ(r.result, fixnum(42));
}

TEST(MultCompiler, Arithmetic)
{
    auto r = runMult("(define (main) (+ 1 (* 6 7) (- 10 3) (- 5)))");
    EXPECT_EQ(r.result, fixnum(1 + 42 + 7 - 5));
}

TEST(MultCompiler, QuotientRemainder)
{
    auto r = runMult(
        "(define (main) (+ (* (quotient 17 5) 100) (remainder 17 5)))");
    EXPECT_EQ(r.result, fixnum(302));
}

TEST(MultCompiler, NegativeArithmetic)
{
    auto r = runMult("(define (main) (* -6 7))");
    EXPECT_EQ(r.result, fixnum(-42));
    r = runMult("(define (main) (quotient -17 5))");
    EXPECT_EQ(r.result, fixnum(-3));
}

TEST(MultCompiler, Comparisons)
{
    auto r = runMult("(define (main) (if (< 3 5) 1 0))");
    EXPECT_EQ(r.result, fixnum(1));
    r = runMult("(define (main) (if (>= 3 5) 1 0))");
    EXPECT_EQ(r.result, fixnum(0));
    r = runMult("(define (main) (if (= 4 4) 1 0))");
    EXPECT_EQ(r.result, fixnum(1));
}

TEST(MultCompiler, BooleansAndLogic)
{
    auto r = runMult("(define (main) (if (and (< 1 2) (< 2 3)) 7 8))");
    EXPECT_EQ(r.result, fixnum(7));
    r = runMult("(define (main) (if (or (< 2 1) (< 2 3)) 7 8))");
    EXPECT_EQ(r.result, fixnum(7));
    r = runMult("(define (main) (if (not false) 7 8))");
    EXPECT_EQ(r.result, fixnum(7));
    r = runMult("(define (main) (if nil 1 0))");
    EXPECT_EQ(r.result, fixnum(0)) << "() is false, as in T";
}

TEST(MultCompiler, LetBindsInParallel)
{
    auto r = runMult(
        "(define (main)"
        "  (let ((x 3))"
        "    (let ((x 10) (y x))"       // y sees the outer x
        "      (+ x y))))");
    EXPECT_EQ(r.result, fixnum(13));
}

TEST(MultCompiler, FunctionCallsAndRecursion)
{
    auto r = runMult(
        "(define (square x) (* x x))"
        "(define (main) (square (square 3)))");
    EXPECT_EQ(r.result, fixnum(81));

    r = runMult(
        "(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))"
        "(define (main) (fact 10))");
    EXPECT_EQ(r.result, fixnum(3628800));
}

TEST(MultCompiler, SixArguments)
{
    auto r = runMult(
        "(define (f a b c d e g) (+ a (- b c) (* d e) g))"
        "(define (main) (f 1 10 4 2 3 100))");
    EXPECT_EQ(r.result, fixnum(1 + 6 + 6 + 100));
}

TEST(MultCompiler, DeepRecursionUsesStack)
{
    auto r = runMult(
        "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))"
        "(define (main) (sum 500))");
    EXPECT_EQ(r.result, fixnum(500 * 501 / 2));
}

TEST(MultCompiler, ConsCarCdr)
{
    auto r = runMult(
        "(define (main)"
        "  (let ((p (cons 1 (cons 2 nil))))"
        "    (+ (car p) (car (cdr p)))))");
    EXPECT_EQ(r.result, fixnum(3));
}

TEST(MultCompiler, ListPredicates)
{
    auto r = runMult(
        "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))"
        "(define (main) (len (cons 1 (cons 2 (cons 3 nil)))))");
    EXPECT_EQ(r.result, fixnum(3));

    r = runMult("(define (main) (if (pair? (cons 1 2)) 1 0))");
    EXPECT_EQ(r.result, fixnum(1));
    r = runMult("(define (main) (if (pair? 5) 1 0))");
    EXPECT_EQ(r.result, fixnum(0));
}

TEST(MultCompiler, Vectors)
{
    auto r = runMult(
        "(define (main)"
        "  (let ((v (make-vector 10 0)))"
        "    (vector-set! v 3 77)"
        "    (vector-set! v 4 (+ (vector-ref v 3) 1))"
        "    (+ (vector-ref v 4) (vector-length v))))");
    EXPECT_EQ(r.result, fixnum(88));
}

TEST(MultCompiler, VectorFillDefaults)
{
    auto r = runMult(
        "(define (main)"
        "  (let ((v (make-vector 4 9)))"
        "    (+ (vector-ref v 0) (vector-ref v 3))))");
    EXPECT_EQ(r.result, fixnum(18));
}

TEST(MultCompiler, PrintlnGoesToConsole)
{
    auto r = runMult(
        "(define (main) (begin (println 11) (println 22) 33))");
    EXPECT_EQ(r.result, fixnum(33));
    ASSERT_EQ(r.console.size(), 2u);
    EXPECT_EQ(r.console[0], fixnum(11));
    EXPECT_EQ(r.console[1], fixnum(22));
}

TEST(MultCompiler, FutureErasedInSeqMode)
{
    // "T seq": futures compile away entirely.
    auto r = runMult(
        "(define (fib n)"
        "  (if (< n 2) n (+ (future (fib (- n 1)))"
        "                   (future (fib (- n 2))))))"
        "(define (main) (fib 12))");
    EXPECT_EQ(r.result, fixnum(144));
    EXPECT_EQ(r.spawns, 0u);
    EXPECT_EQ(r.steals, 0u);
}

TEST(MultCompiler, TouchIsIdentityOnValues)
{
    auto r = runMult("(define (main) (touch (+ 1 2)))");
    EXPECT_EQ(r.result, fixnum(3));
}

TEST(MultCompiler, MutablePairs)
{
    auto r = runMult(
        "(define (main)"
        "  (let ((p (cons 1 2)))"
        "    (begin (set-car! p 40)"
        "           (set-cdr! p (+ (car p) 2))"
        "           (cdr p))))");
    EXPECT_EQ(r.result, fixnum(42));
}

TEST(MultCompiler, MinMaxAbs)
{
    auto r = runMult("(define (main) (min 3 7))");
    EXPECT_EQ(r.result, fixnum(3));
    r = runMult("(define (main) (max 3 7))");
    EXPECT_EQ(r.result, fixnum(7));
    r = runMult("(define (main) (min -3 -7))");
    EXPECT_EQ(r.result, fixnum(-7));
    r = runMult("(define (main) (abs -42))");
    EXPECT_EQ(r.result, fixnum(42));
    r = runMult("(define (main) (abs 42))");
    EXPECT_EQ(r.result, fixnum(42));
}

TEST(MultCompiler, MinMaxWithSoftwareChecks)
{
    mult::CompileOptions sw;
    sw.softwareChecks = true;
    auto r = runMult("(define (main) (+ (min 3 7) (max 1 5) (abs -2)))",
                     sw);
    EXPECT_EQ(r.result, fixnum(10));
}

TEST(MultCompiler, ShadowingAndNestedScopes)
{
    auto r = runMult(
        "(define (f x)"
        "  (let ((y (+ x 1)))"
        "    (let ((x (* y 2)))"
        "      (let ((y (- x 3)))"
        "        (+ x y)))))"
        "(define (main) (f 10))");
    // y=11, x'=22, y'=19 -> 41.
    EXPECT_EQ(r.result, fixnum(41));
}

TEST(MultCompiler, AndOrReturnValues)
{
    // `and` returns its last value; `or` the first truthy one.
    auto r = runMult("(define (main) (and 1 2 3))");
    EXPECT_EQ(r.result, fixnum(3));
    r = runMult("(define (main) (if (and true false) 1 0))");
    EXPECT_EQ(r.result, fixnum(0));
    r = runMult("(define (main) (or false 7 9))");
    EXPECT_EQ(r.result, fixnum(7));
}

TEST(MultCompiler, CompileErrors)
{
    using mult::Compiler;
    using mult::CompileOptions;
    auto expect_fatal = [](const std::string &src) {
        Assembler as;
        Compiler c(as, CompileOptions{});
        EXPECT_THROW(c.compileSource(src), FatalError) << src;
    };
    expect_fatal("(define (main) (undefined-fn 1))");
    expect_fatal("(define (main) unbound)");
    expect_fatal("(define (f x) x)");            // no main
    expect_fatal("(define (main x) x)");         // main must be thunk
    expect_fatal("(define (main) (if))");
    expect_fatal("(define (f) 1)(define (f) 2)(define (main) 0)");
    expect_fatal("(define (main) (f 1))(define (f a b) a)");
}

TEST(MultCompiler, SoftwareCheckModeRunsSequentialCode)
{
    // Encore "Mul-T seq": same program, software operand checks.
    mult::CompileOptions copts;
    copts.softwareChecks = true;
    auto r = runMult(
        "(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))"
        "(define (main) (fact 10))",
        copts);
    EXPECT_EQ(r.result, fixnum(3628800));
}

TEST(MultCompiler, SoftwareChecksCostCycles)
{
    const std::string src =
        "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))"
        "(define (main) (sum 300))";
    auto hard = runMult(src);
    mult::CompileOptions sw;
    sw.softwareChecks = true;
    auto soft = runMult(src, sw);
    EXPECT_EQ(hard.result, soft.result);
    // The paper reports ~2x for software future detection (Table 3,
    // "T seq" vs "Mul-T seq" on the Encore); we only require the
    // overhead to be tangible and bounded here.
    double ratio = double(soft.cycles) / double(hard.cycles);
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, 3.0);
}

} // namespace
} // namespace april

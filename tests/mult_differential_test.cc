/**
 * @file
 * Differential property testing: generate random Mul-T programs,
 * evaluate them with a host-side reference interpreter, and check the
 * simulator agrees — in sequential mode, with eager futures, with
 * lazy futures, on one and on four processors, and under Encore-style
 * software checks. Any disagreement is a compiler, runtime, processor
 * or memory-system bug.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hh"
#include "test_support/mult_run.hh"

namespace april
{
namespace
{

using mult::Sexp;
using testutil::runMult;
using FM = mult::CompileOptions::FutureMode;

/** Generates random integer expressions over bounded variables. */
class ExprGen
{
  public:
    explicit ExprGen(uint64_t seed) : rng(seed) {}

    /**
     * Random expression of the given depth over variables in scope;
     * `futures_ok` sprinkles future/touch pairs over subexpressions.
     */
    Sexp
    gen(int depth, const std::vector<std::string> &vars, bool futures_ok)
    {
        if (depth == 0 || rng.chance(0.25)) {
            if (!vars.empty() && rng.chance(0.6)) {
                return Sexp::symbol(
                    vars[size_t(rng.below(vars.size()))]);
            }
            return Sexp::integer(rng.range(-50, 50));
        }
        switch (rng.below(futures_ok ? 7 : 6)) {
          case 0:
            return op2("+", depth, vars, futures_ok);
          case 1:
            return op2("-", depth, vars, futures_ok);
          case 2: {
            // Keep products small to stay inside fixnum range.
            Sexp e = Sexp::list({Sexp::symbol("*"),
                                 gen(0, vars, false),
                                 gen(0, vars, false)});
            return e;
          }
          case 3: {
            std::vector<Sexp> items = {
                Sexp::symbol("if"),
                Sexp::list({Sexp::symbol(rng.chance(0.5) ? "<" : ">="),
                            gen(depth - 1, vars, futures_ok),
                            gen(depth - 1, vars, futures_ok)}),
                gen(depth - 1, vars, futures_ok),
                gen(depth - 1, vars, futures_ok)};
            return Sexp::list(std::move(items));
          }
          case 4: {
            // (let ((tN e1)) e2) with the new variable in scope.
            std::string v = "t" + std::to_string(letCounter++);
            std::vector<std::string> inner = vars;
            inner.push_back(v);
            return Sexp::list(
                {Sexp::symbol("let"),
                 Sexp::list({Sexp::list(
                     {Sexp::symbol(v),
                      gen(depth - 1, vars, futures_ok)})}),
                 gen(depth - 1, inner, futures_ok)});
          }
          case 5:
            return op2("+", depth, vars, futures_ok);
          default:
            // (touch (future e)): forces real task machinery.
            return Sexp::list(
                {Sexp::symbol("touch"),
                 Sexp::list({Sexp::symbol("future"),
                             gen(depth - 1, vars, futures_ok)})});
        }
    }

  private:
    Sexp
    op2(const char *op, int depth, const std::vector<std::string> &vars,
        bool futures_ok)
    {
        return Sexp::list({Sexp::symbol(op),
                           gen(depth - 1, vars, futures_ok),
                           gen(depth - 1, vars, futures_ok)});
    }

    Rng rng;
    int letCounter = 0;
};

/** Host-side reference evaluation (futures are pure values here). */
int64_t
evalRef(const Sexp &e, std::vector<std::pair<std::string, int64_t>> &env)
{
    if (e.isInteger())
        return e.num;
    if (e.isSymbol()) {
        for (auto it = env.rbegin(); it != env.rend(); ++it) {
            if (it->first == e.sym)
                return it->second;
        }
        ADD_FAILURE() << "unbound " << e.sym;
        return 0;
    }
    const std::string &op = e[0].sym;
    if (op == "+")
        return evalRef(e[1], env) + evalRef(e[2], env);
    if (op == "-")
        return evalRef(e[1], env) - evalRef(e[2], env);
    if (op == "*")
        return evalRef(e[1], env) * evalRef(e[2], env);
    if (op == "<")
        return evalRef(e[1], env) < evalRef(e[2], env);
    if (op == ">=")
        return evalRef(e[1], env) >= evalRef(e[2], env);
    if (op == "if") {
        int64_t c = evalRef(e[1], env);
        return (op == "if" && c != 0) ? evalRef(e[2], env)
                                      : evalRef(e[3], env);
    }
    if (op == "let") {
        int64_t v = evalRef(e[1][0][1], env);
        env.emplace_back(e[1][0][0].sym, v);
        int64_t r = evalRef(e[2], env);
        env.pop_back();
        return r;
    }
    if (op == "touch" || op == "future")
        return evalRef(e[1], env);
    ADD_FAILURE() << "ref eval: " << e.str();
    return 0;
}

/** `if` in the reference: comparisons return 1/0, if tests truthiness
 * of a *boolean*, so wrap the comparison result. In Mul-T the
 * comparison returns #t/#f; the generator only puts comparisons in if
 * conditions, so 1/0 vs #t/#f agree. */

struct Case
{
    uint64_t seed;
    FM mode;
    bool software;
    uint32_t nodes;
    const char *name;
};

class Differential : public ::testing::TestWithParam<Case>
{
};

TEST_P(Differential, RandomProgramsAgreeWithReference)
{
    Case c = GetParam();
    for (int trial = 0; trial < 6; ++trial) {
        ExprGen gen(c.seed * 97 + uint64_t(trial));
        std::vector<std::string> params = {"a", "b", "c"};
        bool futures = c.mode != FM::Erase;
        Sexp body = gen.gen(4, params, futures);

        // Reference value.
        std::vector<std::pair<std::string, int64_t>> env = {
            {"a", 5}, {"b", -3}, {"c", 11}};
        int64_t expect = evalRef(body, env);
        if (expect > (1 << 28) || expect < -(1 << 28))
            continue;       // fixnum overflow: skip this sample

        std::string src = "(define (f a b c) " + body.str() + ")"
                          "(define (main) (f 5 -3 11))";
        mult::CompileOptions copts;
        copts.futures = c.mode;
        copts.softwareChecks = c.software;
        auto r = runMult(src, copts, c.nodes);
        Word res = r.result;
        int64_t got;
        if (res == tagged::TRUE) {
            got = 1;
        } else if (res == tagged::FALSE) {
            got = 0;
        } else {
            got = tagged::toInt(res);
        }
        EXPECT_EQ(got, expect)
            << "seed=" << c.seed << " trial=" << trial << "\n"
            << src;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Differential,
    ::testing::Values(
        Case{1, FM::Erase, false, 1, "seq"},
        Case{2, FM::Erase, true, 1, "encore_seq"},
        Case{3, FM::Eager, false, 1, "eager_1p"},
        Case{4, FM::Eager, false, 4, "eager_4p"},
        Case{5, FM::Lazy, false, 1, "lazy_1p"},
        Case{6, FM::Lazy, false, 4, "lazy_4p"},
        Case{7, FM::Eager, true, 2, "encore_eager_2p"},
        Case{8, FM::Lazy, false, 8, "lazy_8p"}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return info.param.name;
    });

} // namespace
} // namespace april

/** @file Unit tests for the Mul-T s-expression reader. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mult/sexp.hh"

namespace april::mult
{
namespace
{

TEST(Reader, Atoms)
{
    EXPECT_TRUE(readOne("foo").isSymbol("foo"));
    EXPECT_EQ(readOne("42").num, 42);
    EXPECT_EQ(readOne("-17").num, -17);
    EXPECT_EQ(readOne("+3").num, 3);
    EXPECT_TRUE(readOne("#t").isSymbol("true"));
    EXPECT_TRUE(readOne("#f").isSymbol("false"));
    EXPECT_TRUE(readOne("'()").isSymbol("nil"));
}

TEST(Reader, SymbolsWithPunctuation)
{
    EXPECT_TRUE(readOne("vector-set!").isSymbol("vector-set!"));
    EXPECT_TRUE(readOne("null?").isSymbol("null?"));
    EXPECT_TRUE(readOne("<=").isSymbol("<="));
    EXPECT_TRUE(readOne("-").isSymbol("-"));
}

TEST(Reader, NestedLists)
{
    Sexp e = readOne("(define (fib n) (if (< n 2) n 9))");
    ASSERT_TRUE(e.isList());
    ASSERT_EQ(e.size(), 3u);
    EXPECT_TRUE(e[0].isSymbol("define"));
    EXPECT_TRUE(e[1].isList());
    EXPECT_TRUE(e[1][0].isSymbol("fib"));
    EXPECT_TRUE(e[2][0].isSymbol("if"));
    EXPECT_EQ(e[2][1][2].num, 2);
}

TEST(Reader, CommentsAndWhitespace)
{
    auto forms = readAll("; header\n(a 1) ; trailing\n\n(b 2)\n");
    ASSERT_EQ(forms.size(), 2u);
    EXPECT_TRUE(forms[0][0].isSymbol("a"));
    EXPECT_TRUE(forms[1][0].isSymbol("b"));
}

TEST(Reader, RoundTripStr)
{
    Sexp e = readOne("(f (g 1 2) x)");
    EXPECT_EQ(e.str(), "(f (g 1 2) x)");
}

TEST(Reader, Errors)
{
    EXPECT_THROW(readOne("(unterminated"), FatalError);
    EXPECT_THROW(readOne(")"), FatalError);
    EXPECT_THROW(readOne(""), FatalError);
    EXPECT_THROW(readOne("(a) extra"), FatalError);
    EXPECT_THROW(readOne("'(1 2)"), FatalError);
    EXPECT_THROW(readOne("#x"), FatalError);
}

} // namespace
} // namespace april::mult

/** @file Unit tests for the k-ary n-cube network timing model. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "network/network.hh"

namespace april::net
{
namespace
{

TEST(Network, NodeCountIsRadixToDim)
{
    EXPECT_EQ(Network({.dim = 2, .radix = 4}).numNodes(), 16u);
    EXPECT_EQ(Network({.dim = 3, .radix = 4}).numNodes(), 64u);
    EXPECT_EQ(Network({.dim = 1, .radix = 8}).numNodes(), 8u);
}

TEST(Network, ManhattanDistance)
{
    Network n({.dim = 2, .radix = 4});
    EXPECT_EQ(n.distance(0, 0), 0u);
    EXPECT_EQ(n.distance(0, 3), 3u);        // along X
    EXPECT_EQ(n.distance(0, 12), 3u);       // along Y
    EXPECT_EQ(n.distance(0, 15), 6u);       // corner to corner
}

TEST(Network, InjectionMatchesUnloadedFormula)
{
    Network n({.dim = 2, .radix = 8});
    // 7 hops, 4 flits, injected at cycle 0 on an idle port:
    // arrival = 7 * hopCycles + 4.
    Injection inj = n.inject(0, 7, 4, 0);
    EXPECT_EQ(inj.start, 0u);
    EXPECT_EQ(inj.hops, 7u);
    EXPECT_EQ(inj.arrive, 7u * 1 + 4u);
}

TEST(Network, UnloadedRoundTripFormula)
{
    Network n({.dim = 3, .radix = 20});
    // Average nk/3 = 20 hops each way, packet size 4:
    // 2 * (20 + 3) = 46 network cycles; the remaining 9 of the
    // paper's 55 are memory latency and controller occupancy.
    uint32_t a = 0;
    uint32_t b = 0 + 10 + 10 * 20;      // +10 in X, +10 in Y
    ASSERT_EQ(n.distance(a, b), 20u);
    EXPECT_EQ(n.unloadedRoundTrip(a, b, 4), 46u);
}

TEST(Network, SourcePortSerializesBackToBackSends)
{
    // Two packets from the same source: the second's head cannot
    // leave until the first's 4 flits have drained from the port.
    Network n({.dim = 1, .radix = 4});
    Injection first = n.inject(0, 3, 4, 0);
    Injection second = n.inject(0, 3, 4, 0);
    EXPECT_EQ(first.start, 0u);
    EXPECT_EQ(first.arrive, 3u * 1 + 4u);
    EXPECT_EQ(second.start, 4u);
    EXPECT_EQ(second.arrive, 4u + 3u * 1 + 4u);
    // Sequence numbers order same-source traffic canonically.
    EXPECT_LT(first.seq, second.seq);
}

TEST(Network, PortFreesAfterDrain)
{
    Network n({.dim = 1, .radix = 4});
    Injection first = n.inject(0, 3, 2, 0);
    EXPECT_EQ(first.arrive, 5u);
    // Injecting after the port drained sees no queueing delay.
    Injection later = n.inject(0, 1, 2, 10);
    EXPECT_EQ(later.start, 10u);
    EXPECT_EQ(later.arrive, 10u + 1u + 2u);
}

TEST(Network, MinCrossNodeLatencyBoundsEveryPacket)
{
    Network n({.dim = 2, .radix = 5});
    Rng rng(3);
    uint64_t q = n.minCrossNodeLatency(2);
    EXPECT_EQ(q, 3u);
    for (int i = 0; i < 200; ++i) {
        uint32_t src = uint32_t(rng.below(25));
        uint32_t dst = uint32_t(rng.below(25));
        if (src == dst)
            continue;
        uint32_t flits = 2 + uint32_t(rng.below(5));
        uint64_t now = uint64_t(i);
        Injection inj = n.inject(src, dst, flits, now);
        EXPECT_GE(inj.arrive, now + q);
    }
}

TEST(Network, StatsTrackHopsAndLatency)
{
    Network n({.dim = 1, .radix = 4});
    Injection inj = n.inject(0, 2, 1, 0);
    EXPECT_EQ(inj.arrive, 3u);
    n.recordDelivery(2, inj.arrive - 0, inj.hops, 1);
    n.recordDelivery(2, 5, 2, 1);
    n.foldStats();
    EXPECT_DOUBLE_EQ(n.statPackets.value(), 2.0);
    EXPECT_DOUBLE_EQ(n.statHops.mean(), 2.0);
    EXPECT_DOUBLE_EQ(n.statLatency.mean(), 4.0);
    EXPECT_DOUBLE_EQ(n.statFlitHops.value(), 4.0);
    // foldStats is idempotent: folding again must not double-count.
    n.foldStats();
    EXPECT_DOUBLE_EQ(n.statPackets.value(), 2.0);
}

TEST(Network, BadEndpointsPanic)
{
    Network n({.dim = 1, .radix = 4});
    EXPECT_THROW(n.inject(9, 0, 1, 0), PanicError);
    EXPECT_THROW(n.inject(0, 9, 1, 0), PanicError);
    EXPECT_THROW(n.inject(0, 1, 0, 0), PanicError);
}

TEST(Network, BadGeometryIsFatal)
{
    EXPECT_THROW(Network({.dim = 0, .radix = 4}), FatalError);
    EXPECT_THROW(Network({.dim = 2, .radix = 1}), FatalError);
}

} // namespace
} // namespace april::net

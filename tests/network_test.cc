/** @file Unit tests for the k-ary n-cube network simulator. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "network/network.hh"

namespace april::net
{
namespace
{

TEST(Network, NodeCountIsRadixToDim)
{
    EXPECT_EQ(Network({.dim = 2, .radix = 4}).numNodes(), 16u);
    EXPECT_EQ(Network({.dim = 3, .radix = 4}).numNodes(), 64u);
    EXPECT_EQ(Network({.dim = 1, .radix = 8}).numNodes(), 8u);
}

TEST(Network, ManhattanDistance)
{
    Network n({.dim = 2, .radix = 4});
    EXPECT_EQ(n.distance(0, 0), 0u);
    EXPECT_EQ(n.distance(0, 3), 3u);        // along X
    EXPECT_EQ(n.distance(0, 12), 3u);       // along Y
    EXPECT_EQ(n.distance(0, 15), 6u);       // corner to corner
}

TEST(Network, DeliversSinglePacket)
{
    Network n({.dim = 2, .radix = 4});
    Packet p;
    p.src = 0;
    p.dst = 15;
    p.flits = 1;
    p.payload = 77;
    n.send(p);
    std::vector<Packet> got;
    for (int i = 0; i < 50; ++i) {
        n.deliver(15, got);
        if (!got.empty())
            break;
        n.tick();
    }
    // Re-check with one more delivered batch.
    n.tick();
    n.deliver(15, got);
    bool found = false;
    for (auto &pkt : got)
        found |= pkt.payload == 77;
    if (!found) {
        // the earlier drains consumed it; that is fine as long as it
        // did not vanish
        EXPECT_TRUE(n.idle());
    }
}

TEST(Network, LatencyMatchesUnloadedFormula)
{
    Network n({.dim = 2, .radix = 8});
    Packet p;
    p.src = 0;
    p.dst = 7;              // 7 hops
    p.flits = 4;
    n.send(p);
    uint64_t cycles = 0;
    std::vector<Packet> got;
    while (got.empty() && cycles < 200) {
        n.tick();
        ++cycles;
        n.deliver(7, got);
    }
    ASSERT_EQ(got.size(), 1u);
    // One way (cut-through): hops * hopCycles + (flits - 1), plus the
    // injection cycle.
    EXPECT_EQ(cycles, 7u * 1 + 3u + 1u);
    EXPECT_EQ(got[0].hops, 7u);
}

TEST(Network, UnloadedRoundTripFormula)
{
    Network n({.dim = 3, .radix = 20});
    // Average nk/3 = 20 hops each way, packet size 4:
    // 2 * (20 + 3) = 46 network cycles; the remaining 9 of the
    // paper's 55 are memory latency and controller occupancy.
    uint32_t rt = 0;
    // pick two nodes 20 hops apart
    uint32_t a = 0;
    uint32_t b = 0 + 10 + 10 * 20;      // +10 in X, +10 in Y
    ASSERT_EQ(n.distance(a, b), 20u);
    rt = n.unloadedRoundTrip(a, b, 4);
    EXPECT_EQ(rt, 46u);
}

TEST(Network, ContentionSerializesSharedLink)
{
    // Two packets from the same source over the same first link: the
    // second is delayed by the first's serialization.
    Network n({.dim = 1, .radix = 4});
    Packet p;
    p.src = 0;
    p.dst = 3;
    p.flits = 4;
    n.send(p);
    n.send(p);
    uint64_t cycles = 0;
    int seen = 0;
    uint64_t last = 0;
    std::vector<Packet> batch;
    while (seen < 2 && cycles < 100) {
        n.tick();
        ++cycles;
        n.deliver(3, batch);
        for (auto &pkt : batch) {
            (void)pkt;
            ++seen;
            last = cycles;
        }
    }
    ASSERT_EQ(seen, 2);
    // Unloaded: 3 hops + 3 drain = 6; the second should take ~4 more.
    EXPECT_GE(last, 9u);
}

TEST(Network, ManyRandomPacketsAllArrive)
{
    Network n({.dim = 2, .radix = 5});
    Rng rng(3);
    int sent = 0;
    for (int i = 0; i < 200; ++i) {
        Packet p;
        p.src = uint32_t(rng.below(25));
        p.dst = uint32_t(rng.below(25));
        p.flits = 1 + uint32_t(rng.below(6));
        p.payload = uint64_t(i);
        n.send(p);
        ++sent;
    }
    int got = 0;
    std::vector<Packet> batch;
    for (int c = 0; c < 5000 && got < sent; ++c) {
        n.tick();
        for (uint32_t node = 0; node < n.numNodes(); ++node) {
            n.deliver(node, batch);
            got += int(batch.size());
        }
    }
    EXPECT_EQ(got, sent);
    EXPECT_TRUE(n.idle());
    EXPECT_EQ(n.statPackets.value(), double(sent));
}

TEST(Network, StatsTrackHopsAndLatency)
{
    Network n({.dim = 1, .radix = 4});
    Packet p;
    p.src = 0;
    p.dst = 2;
    p.flits = 1;
    n.send(p);
    std::vector<Packet> batch;
    for (int i = 0; i < 10; ++i) {
        n.tick();
        n.deliver(2, batch);
    }
    EXPECT_DOUBLE_EQ(n.statHops.mean(), 2.0);
    EXPECT_GE(n.statLatency.mean(), 2.0);
}

TEST(Network, BadEndpointsPanic)
{
    Network n({.dim = 1, .radix = 4});
    Packet p;
    p.src = 9;
    p.dst = 0;
    EXPECT_THROW(n.send(p), PanicError);
    p.src = 0;
    p.flits = 0;
    EXPECT_THROW(n.send(p), PanicError);
}

TEST(Network, BadGeometryIsFatal)
{
    EXPECT_THROW(Network({.dim = 0, .radix = 4}), FatalError);
    EXPECT_THROW(Network({.dim = 2, .radix = 1}), FatalError);
}

} // namespace
} // namespace april::net

/**
 * @file
 * The parallel execution engine (DESIGN.md §7.6): AlewifeMachine
 * sharded over host worker threads must be a bit-for-bit twin of the
 * sequential simulator — identical final snapshot, cycle count, stats
 * dump and trace JSON — for every thread count, with cycle-skipping
 * on or off, and across arbitrary pause/resume boundaries.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "machine/alewife_machine.hh"
#include "machine/snapshot.hh"
#include "mult/compiler.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

namespace april
{
namespace
{

/** Everything observable about one finished run. */
struct RunOut
{
    MachineSnapshot snap;
    std::string stats;
    std::string trace;
    std::string cohTrace;
    Word result = 0;
    uint64_t cycles = 0;
    uint32_t threadsUsed = 0;
    uint64_t quantum = 0;
};

Program
compileLazy(const std::string &source)
{
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Lazy;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(source);
    return as.finish();
}

std::unique_ptr<AlewifeMachine>
makeMachine(const Program &prog, uint32_t threads, bool skip)
{
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 20;
    p.controller.cache = {.lineWords = 4, .numLines = 512, .assoc = 4};
    p.cycleSkip = skip;
    p.traceEvents = true;
    p.cohTrace = true;
    p.hostThreads = threads;
    return std::make_unique<AlewifeMachine>(p, &prog);
}

RunOut
finish(AlewifeMachine &m)
{
    EXPECT_TRUE(m.halted());
    // No quiesce: the booted runtime's idle workers spin forever, so
    // the machine never goes fully silent. Every run stops at the
    // same committed halt cycle, which is all twin comparison needs —
    // in-flight traffic is part of the deterministic state.
    RunOut out;
    out.result = m.console().empty() ? 0 : m.console().back();
    out.cycles = m.cycle();
    out.threadsUsed = m.hostThreads();
    out.quantum = m.quantum();
    out.snap = snapshotMachine(m);
    std::ostringstream stats, trace;
    m.dump(stats);
    out.stats = stats.str();
    m.writeTrace(trace);
    out.trace = trace.str();
    std::ostringstream coh;
    m.writeCohTrace(coh);
    out.cohTrace = coh.str();
    return out;
}

RunOut
runOnce(const Program &prog, uint32_t threads, bool skip)
{
    auto m = makeMachine(prog, threads, skip);
    m->run(80'000'000);
    return finish(*m);
}

void
expectTwin(const RunOut &ref, const RunOut &got, const std::string &what)
{
    EXPECT_EQ(got.cycles, ref.cycles) << what;
    std::string diff = compareExact(ref.snap, got.snap);
    EXPECT_EQ(diff, "") << what;
    EXPECT_EQ(got.stats, ref.stats) << what;
    EXPECT_EQ(got.trace, ref.trace) << what;
    EXPECT_EQ(got.cohTrace, ref.cohTrace) << what;
}

class ParallelRun : public testing::TestWithParam<const char *>
{
};

/** All four suite workloads: threads 2..4 x skip on/off, each a
 *  bit-identical twin of the one-thread run in the same skip mode. */
TEST_P(ParallelRun, ShardedRunIsBitIdentical)
{
    workloads::SuiteSizes s;
    s.fibN = 10;
    s.factorLo = 120;
    s.factorHi = 150;
    s.queensN = 5;
    s.speechLayers = 4;
    s.speechWidth = 4;
    std::string name = GetParam();
    workloads::Benchmark b =
        name == "fib"      ? workloads::makeFib(s)
        : name == "factor" ? workloads::makeFactor(s)
        : name == "queens" ? workloads::makeQueens(s)
                           : workloads::makeSpeech(s);
    Program prog = compileLazy(b.source);

    for (bool skip : {true, false}) {
        RunOut ref = runOnce(prog, 1, skip);
        EXPECT_EQ(ref.threadsUsed, 1u);
        EXPECT_EQ(tagged::toInt(ref.result), b.expected);
        for (uint32_t threads : {2u, 3u, 4u}) {
            RunOut par = runOnce(prog, threads, skip);
            EXPECT_EQ(par.threadsUsed, threads);
            EXPECT_GE(par.quantum, 1u);
            expectTwin(ref, par,
                       name + " threads=" + std::to_string(threads) +
                           " skip=" + (skip ? "on" : "off"));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelRun,
                         testing::Values("fib", "factor", "queens",
                                         "speech"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

/** Pausing run() mid-flight — at quantum multiples and at ragged
 *  off-grid cycle counts — and resuming must not perturb anything:
 *  the quantum grid is absolute, not relative to the call. */
TEST(ParallelRunResume, ChunkedRunMatchesContinuousRun)
{
    Program prog = compileLazy(workloads::fibSource(10));
    RunOut ref = runOnce(prog, 4, true);

    for (uint64_t chunk : {uint64_t(1), uint64_t(0)}) {
        auto m = makeMachine(prog, 4, true);
        uint64_t step = chunk ? m->quantum() * 16 // on-grid pauses
                              : 997;              // ragged pauses
        uint64_t guard = 0;
        while (!m->halted() && ++guard < 1'000'000)
            m->run(step);
        RunOut got = finish(*m);
        expectTwin(ref, got,
                   std::string("chunked step=") + std::to_string(step));
    }
}

/** The PR 8 machine-scaling configuration (DESIGN.md §7.8): the
 *  wide-sharing workload on a 4x4 mesh under the limited directory
 *  (i = 4, so the 16-wide sharer set overflows and the spill walk
 *  runs inside the timed simulation). The sharded engines must stay
 *  bit-for-bit twins of the sequential one — snapshot, stats, trace
 *  and span log — in both cycle-skip modes. */
TEST(ParallelRunMesh, LimitedDirectoryOnMeshIsBitIdentical)
{
    workloads::WideSharing w =
        workloads::buildWideSharing(16, 1u << 14);
    auto runWide = [&](uint32_t threads, bool skip) {
        AlewifeParams p;
        p.network = {.dim = 2, .radix = 4};
        p.wordsPerNode = w.wordsPerNode;
        p.bootRuntime = false;
        p.controller.cache = {.lineWords = 4, .numLines = 64,
                              .assoc = 2};
        p.cycleSkip = skip;
        p.traceEvents = true;
        p.cohTrace = true;
        p.hostThreads = threads;
        p.dirScheme = coh::DirScheme::LimitedPtr;
        p.dirPointers = 4;
        auto m = std::make_unique<AlewifeMachine>(p, &w.prog);
        for (uint32_t n = 0; n < m->numNodes(); ++n)
            workloads::bootCoherentNode(m->proc(n), w.prog);
        m->run(80'000'000);
        RunOut out = finish(*m);
        // The spill machinery actually ran in every configuration.
        double traps = 0;
        for (uint32_t n = 0; n < m->numNodes(); ++n)
            traps += m->controller(n).statOverflowTraps.value();
        EXPECT_GE(traps, 1.0) << "threads=" << threads;
        return out;
    };

    for (bool skip : {true, false}) {
        RunOut ref = runWide(1, skip);
        EXPECT_EQ(ref.threadsUsed, 1u);
        EXPECT_EQ(ref.result, tagged::fixnum(99));
        for (uint32_t threads : {2u, 4u}) {
            RunOut par = runWide(threads, skip);
            EXPECT_EQ(par.threadsUsed, threads);
            expectTwin(ref, par,
                       std::string("wide-sharing threads=") +
                           std::to_string(threads) + " skip=" +
                           (skip ? "on" : "off"));
        }
    }
}

/** Thread counts beyond the node count clamp instead of failing. */
TEST(ParallelRunResume, ThreadsClampToNodeCount)
{
    Program prog = compileLazy(workloads::fibSource(8));
    RunOut ref = runOnce(prog, 1, true);
    RunOut par = runOnce(prog, 64, true);
    EXPECT_LE(par.threadsUsed, 4u);
    EXPECT_GE(par.threadsUsed, 2u);
    expectTwin(ref, par, "threads=64 (clamped)");
}

} // namespace
} // namespace april

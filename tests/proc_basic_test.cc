/** @file Core execution tests: ALU, branches, delay slots, calls. */

#include <gtest/gtest.h>

#include "test_support/proc_rig.hh"

namespace april
{
namespace
{

using testutil::Rig;
using namespace tagged;

TEST(ProcBasic, MoviAndHalt)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(42));
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(1), fixnum(42));
}

TEST(ProcBasic, RegisterZeroIsHardwired)
{
    Assembler as;
    as.bind("main");
    as.movi(0, 99);             // write to r0 must be ignored
    as.addiR(1, 0, 7);          // r1 = r0 + 7
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(0), 0u);
    EXPECT_EQ(rig.proc.readReg(1), 7u);
}

TEST(ProcBasic, TaggedFixnumAddSub)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(30));
    as.movi(2, fixnum(12));
    as.add(3, 1, 2);
    as.sub(4, 1, 2);
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(3)), 42);
    EXPECT_EQ(toInt(rig.proc.readReg(4)), 18);
}

TEST(ProcBasic, LogicalAndShiftOps)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 0b1100);
    as.movi(2, 0b1010);
    as.andR(3, 1, 2);
    as.orR(4, 1, 2);
    as.xorR(5, 1, 2);
    as.slliR(6, 1, 2);
    as.srliR(7, 1, 2);
    as.movi(8, Word(-64));
    as.sraiR(9, 8, 3);
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(3), 0b1000u);
    EXPECT_EQ(rig.proc.readReg(4), 0b1110u);
    EXPECT_EQ(rig.proc.readReg(5), 0b0110u);
    EXPECT_EQ(rig.proc.readReg(6), 0b110000u);
    EXPECT_EQ(rig.proc.readReg(7), 0b11u);
    EXPECT_EQ(int32_t(rig.proc.readReg(9)), -8);
}

TEST(ProcBasic, MulDivRemSemantics)
{
    Assembler as;
    as.bind("main");
    as.movi(1, Word(7));
    as.movi(2, Word(-3));
    as.mulR(3, 1, 2);
    as.push({.op = Opcode::DIV, .rd = 4, .rs1 = 1, .rs2 = 2});
    as.push({.op = Opcode::REM, .rd = 5, .rs1 = 1, .rs2 = 2});
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(int32_t(rig.proc.readReg(3)), -21);
    EXPECT_EQ(int32_t(rig.proc.readReg(4)), -2);    // truncating
    EXPECT_EQ(int32_t(rig.proc.readReg(5)), 1);
}

TEST(ProcBasic, MulIsMultiCycle)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 3);
    as.movi(2, 4);
    as.mulR(3, 1, 2);
    as.halt();
    ProcParams p;
    p.mulCycles = 5;
    Rig rig(as.finish(), p);
    uint64_t cycles = rig.run();
    // movi + movi + mul(5) + halt = 8 cycles.
    EXPECT_EQ(cycles, 8u);
}

TEST(ProcBasic, ConditionCodesAndBranches)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(5));
    as.movi(2, fixnum(5));
    as.cmp(1, 2);
    as.j(Cond::EQ, "was_eq");
    as.movi(3, fixnum(0));
    as.halt();
    as.bind("was_eq");
    as.movi(3, fixnum(1));
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(3)), 1);
}

TEST(ProcBasic, SignedComparisons)
{
    // (-3 < 4) via tagged compare: N set by SUB.
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(-3));
    as.movi(2, fixnum(4));
    as.cmp(1, 2);
    as.j(Cond::LT, "lt");
    as.movi(3, 0);
    as.halt();
    as.bind("lt");
    as.movi(3, 1);
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(3), 1u);
}

TEST(ProcBasic, DelaySlotExecutesOnTakenBranch)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 0);
    as.jRaw(Cond::AL, "out");
    as.movi(1, 7);              // delay slot: must execute
    as.movi(1, 99);             // skipped
    as.bind("out");
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(1), 7u);
}

TEST(ProcBasic, DelaySlotExecutesOnUntakenBranch)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 1);
    as.cmpiR(1, 1);             // Z set
    as.jRaw(Cond::NE, "never");
    as.movi(2, 5);              // delay slot
    as.movi(3, 6);              // fall-through continues
    as.halt();
    as.bind("never");
    as.movi(3, 99);
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(2), 5u);
    EXPECT_EQ(rig.proc.readReg(3), 6u);
}

TEST(ProcBasic, CallAndReturnLinkage)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(10));
    as.call("double_it");
    as.mov(5, 1);
    as.halt();
    as.bind("double_it");
    as.add(1, 1, 1);
    as.ret();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(5)), 20);
}

TEST(ProcBasic, LoopCountsDown)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(10));     // counter
    as.movi(2, fixnum(0));      // sum
    as.bind("loop");
    as.add(2, 2, 1);
    as.subi(1, 1, int32_t(fixnum(1)));
    as.jRaw(Cond::GT, "loop");
    as.nop();
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(2)), 55);
}

TEST(ProcBasic, LoadStoreRoundTrip)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(100, Tag::Other));   // boxed address
    as.movi(2, fixnum(77));
    as.stnw(2, 1, 0);
    as.ldnw(3, 1, 0);
    as.stnw(2, 1, wordOff(2));                  // word 102
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(3), fixnum(77));
    EXPECT_EQ(rig.mem.read(100), fixnum(77));
    EXPECT_EQ(rig.mem.read(102), fixnum(77));
}

TEST(ProcBasic, ConsoleOutputViaStio)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(123));
    as.stio(int(IoReg::ConsoleOut), 1);
    as.halt();
    Rig rig(as.finish());
    rig.run();
    ASSERT_EQ(rig.io.console.size(), 1u);
    EXPECT_EQ(toInt(rig.io.console[0]), 123);
}

TEST(ProcBasic, CyclesMatchInstructionCount)
{
    Assembler as;
    as.bind("main");
    for (int i = 0; i < 10; ++i)
        as.nop();
    as.halt();
    Rig rig(as.finish());
    EXPECT_EQ(rig.run(), 11u);
    EXPECT_EQ(rig.proc.statInsts.value(), 11.0);
}

TEST(ProcBasic, RunStopsAtMaxCycles)
{
    Assembler as;
    as.bind("main");
    as.bind("spin");
    as.j(Cond::AL, "spin");
    Rig rig(as.finish());
    uint64_t used = rig.proc.run(100);
    EXPECT_EQ(used, 100u);
    EXPECT_FALSE(rig.proc.halted());
}

TEST(ProcBasic, TasReturnsOldValueAndSets)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(50, Tag::Other));
    as.tas(2, 1, 0);            // first acquire: old = 0
    as.tas(3, 1, 0);            // second: old = 1
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(2), 0u);
    EXPECT_EQ(rig.proc.readReg(3), 1u);
    EXPECT_EQ(rig.mem.read(50), 1u);
}

TEST(ProcBasic, GlobalRegistersSurviveFrameSwitch)
{
    Assembler as;
    as.bind("main");
    as.movi(reg::g(0), 1234);
    as.incfp();
    as.mov(1, reg::g(0));
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.fp(), 1u);
    // r1 was written in frame 1; read it from there.
    EXPECT_EQ(rig.proc.frame(1).regs[1], 1234u);
}

TEST(ProcBasic, FramePointerInstructions)
{
    Assembler as;
    as.bind("main");
    as.incfp();
    as.incfp();
    as.rdfp(reg::g(1));
    as.movi(reg::g(2), 1);
    as.stfp(reg::g(2));
    as.rdfp(reg::g(3));
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readGlobal(1), 2u);
    EXPECT_EQ(rig.proc.readGlobal(3), 1u);
}

TEST(ProcBasic, IncfpWrapsModuloFrames)
{
    Assembler as;
    as.bind("main");
    for (int i = 0; i < 4; ++i)
        as.incfp();
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.fp(), 0u);
}

TEST(ProcBasic, SpecialRegistersReadable)
{
    Assembler as;
    as.bind("main");
    as.rdspec(1, Spec::NodeId);
    as.rdspec(2, Spec::NumFrames);
    as.rdspec(3, Spec::FrameId);
    as.halt();
    ProcParams p;
    p.nodeId = 9;
    Rig rig(as.finish(), p);
    rig.run();
    EXPECT_EQ(rig.proc.readReg(1), 9u);
    EXPECT_EQ(rig.proc.readReg(2), 4u);
    EXPECT_EQ(rig.proc.readReg(3), 0u);
}

} // namespace
} // namespace april

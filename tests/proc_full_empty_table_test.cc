/**
 * @file
 * Exhaustive property test of the Table 2 full/empty load/store
 * matrix. A tiny executable model of the table (written from the
 * paper's description, independent of src/proc/fe_semantics.hh)
 * predicts, for every flavor x initial word state:
 *
 *   - whether the access faults (FeEmpty / FeFull trap),
 *   - the final word value and f/e bit,
 *   - the destination register (loads: data on success, untouched on
 *     a fault),
 *   - the latched F condition bit, observed architecturally through
 *     Jfull/Jempty -- including that a faulting access *preserves*
 *     the previous latch.
 *
 * All 16 flavors (feTrap x feModify x MissPolicy, loads and stores)
 * are driven through a real processor on perfect memory and checked
 * against the model; TAS's ignore-f/e-write-full-latch behavior gets
 * its own case.
 */

#include <gtest/gtest.h>

#include "test_support/proc_rig.hh"

namespace april
{
namespace
{

using testutil::Rig;

constexpr Addr kAddr = 512;         ///< the word under test
constexpr Addr kPresetAddr = 520;   ///< known-state word: presets F
constexpr Word kInitData = tagged::fixnum(31);
constexpr Word kStoreData = tagged::fixnum(77);
constexpr Word kSentinel = tagged::fixnum(999);

/** One of the 16 Table 2 flavors. */
struct Flavor
{
    bool isLoad;
    bool feTrap;
    bool feModify;
    MissPolicy miss;
};

std::string
flavorName(const Flavor &f)
{
    std::string n = f.isLoad ? "ld" : "st";
    if (f.feTrap)
        n += 't';
    if (f.feModify)
        n += f.isLoad ? 'e' : 'f';
    n += 'n';
    n += f.miss == MissPolicy::Trap ? 't' : 'w';
    return n;
}

/** What the executable model of Table 2 predicts. */
struct Expected
{
    bool faults;    ///< FeEmpty (loads) / FeFull (stores) trap
    Word data;      ///< final word contents
    bool full;      ///< final f/e bit
    Word rd;        ///< destination register after the access
    bool fBit;      ///< latched F condition after the access
};

/**
 * The model: trapping flavors fault on the "wrong" f/e state and then
 * touch nothing (word, rd and the F latch all keep their old values);
 * otherwise data moves, feModify consumes (loads) or produces
 * (stores) the bit, and F latches the bit as it was *before* the
 * access. MissPolicy only matters on a cache miss, which perfect
 * memory never has.
 */
Expected
table2(const Flavor &f, bool init_full, bool preset_f)
{
    Expected e;
    e.faults = f.feTrap && (f.isLoad ? !init_full : init_full);
    if (e.faults) {
        e.data = kInitData;
        e.full = init_full;
        e.rd = kSentinel;
        e.fBit = preset_f;
        return e;
    }
    e.data = f.isLoad ? kInitData : kStoreData;
    e.full = f.feModify ? !f.isLoad : init_full;
    e.rd = f.isLoad ? kInitData : kSentinel;
    e.fBit = init_full;
    return e;
}

/**
 * Drive one flavor against one initial word state and return what the
 * processor actually did. The F latch is preset via a plain load of a
 * word in a known state, then observed with Jfull after the access.
 */
struct Observed
{
    Word data;
    bool full;
    Word rd;
    bool fBit;
    uint64_t feEmptyTraps;
    uint64_t feFullTraps;
};

Observed
runFlavor(const Flavor &f, bool init_full, bool preset_f)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(kAddr, Tag::Other));
    as.movi(4, tagged::ptr(kPresetAddr, Tag::Other));
    as.movi(2, kStoreData);
    as.movi(16, kSentinel);
    as.ldnw(5, 4, 0);                   // preset the F latch
    if (f.isLoad)
        as.load(16, 1, 0, f.feTrap, f.feModify, f.miss);
    else
        as.store(2, 1, 0, f.feTrap, f.feModify, f.miss);
    as.jRaw(Cond::FULL, "was_full");
    as.nop();
    as.movi(3, tagged::fixnum(0));
    as.jRaw(Cond::AL, "join");
    as.nop();
    as.bind("was_full");
    as.movi(3, tagged::fixnum(1));
    as.bind("join");
    // Jempty must be Jfull's exact complement on the same latch.
    as.jRaw(Cond::EMPTY, "was_empty");
    as.nop();
    as.movi(6, tagged::fixnum(0));
    as.jRaw(Cond::AL, "out");
    as.nop();
    as.bind("was_empty");
    as.movi(6, tagged::fixnum(1));
    as.bind("out");
    as.halt();

    // Faulting flavors vector here: count in g6, skip the instruction.
    as.bind("fe_handler");
    as.addiR(reg::g(6), reg::g(6), 1);
    as.rettSkip();

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FeEmpty,
                           rig.prog.entry("fe_handler"));
    rig.proc.setTrapVector(TrapKind::FeFull,
                           rig.prog.entry("fe_handler"));
    rig.mem.writeFe(kAddr, kInitData, init_full);
    rig.mem.writeFe(kPresetAddr, tagged::fixnum(5), preset_f);
    rig.run();

    Observed o;
    o.data = rig.mem.read(kAddr);
    o.full = rig.mem.isFull(kAddr);
    o.rd = rig.proc.frame(0).regs[16];
    Word jfull = rig.proc.frame(0).regs[3];
    Word jempty = rig.proc.frame(0).regs[6];
    EXPECT_NE(jfull, jempty) << "Jfull and Jempty saw different latches";
    o.fBit = jfull == tagged::fixnum(1);
    o.feEmptyTraps = rig.proc.statTraps[size_t(TrapKind::FeEmpty)].value();
    o.feFullTraps = rig.proc.statTraps[size_t(TrapKind::FeFull)].value();
    return o;
}

TEST(FullEmptyTable, AllSixteenFlavorsMatchTheModel)
{
    for (bool is_load : {true, false}) {
        for (bool fe_trap : {false, true}) {
            for (bool fe_modify : {false, true}) {
                for (MissPolicy miss :
                     {MissPolicy::Trap, MissPolicy::Wait}) {
                    Flavor f{is_load, fe_trap, fe_modify, miss};
                    for (bool init_full : {false, true}) {
                        // Preset F opposite to the word under test so
                        // "latched" and "preserved" are distinguishable.
                        bool preset_f = !init_full;
                        SCOPED_TRACE(flavorName(f) +
                                     (init_full ? " on full" : " on empty"));
                        Expected e = table2(f, init_full, preset_f);
                        Observed o = runFlavor(f, init_full, preset_f);
                        EXPECT_EQ(o.data, e.data);
                        EXPECT_EQ(o.full, e.full);
                        EXPECT_EQ(o.rd, e.rd);
                        EXPECT_EQ(o.fBit, e.fBit);
                        EXPECT_EQ(o.feEmptyTraps,
                                  uint64_t(e.faults && f.isLoad));
                        EXPECT_EQ(o.feFullTraps,
                                  uint64_t(e.faults && !f.isLoad));
                    }
                }
            }
        }
    }
}

TEST(FullEmptyTable, TasIgnoresFeAndLatchesOldState)
{
    for (bool init_full : {false, true}) {
        SCOPED_TRACE(init_full ? "tas on full" : "tas on empty");
        Assembler as;
        as.bind("main");
        as.movi(1, tagged::ptr(kAddr, Tag::Other));
        as.tas(16, 1, 0);
        as.jRaw(Cond::FULL, "was_full");
        as.nop();
        as.movi(3, tagged::fixnum(0));
        as.jRaw(Cond::AL, "out");
        as.nop();
        as.bind("was_full");
        as.movi(3, tagged::fixnum(1));
        as.bind("out");
        as.halt();

        Rig rig(as.finish());
        rig.mem.writeFe(kAddr, kInitData, init_full);
        rig.run();

        // TAS never faults, returns the old word, writes 1, leaves the
        // f/e bit alone, and latches the old state like any access.
        EXPECT_EQ(rig.proc.frame(0).regs[16], kInitData);
        EXPECT_EQ(rig.mem.read(kAddr), Word(1));
        EXPECT_EQ(rig.mem.isFull(kAddr), init_full);
        EXPECT_EQ(rig.proc.frame(0).regs[3],
                  tagged::fixnum(init_full ? 1 : 0));
        EXPECT_EQ(rig.proc.statTraps[size_t(TrapKind::FeEmpty)].value(),
                  0u);
        EXPECT_EQ(rig.proc.statTraps[size_t(TrapKind::FeFull)].value(),
                  0u);
    }
}

} // namespace
} // namespace april

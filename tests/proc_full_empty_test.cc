/**
 * @file
 * Executable specification of Table 2: full/empty bit behavior of the
 * load/store flavors, the f/e condition bit, and Jfull/Jempty.
 */

#include <gtest/gtest.h>

#include "test_support/proc_rig.hh"

namespace april
{
namespace
{

using testutil::Rig;
using namespace tagged;

constexpr Addr kSlot = 200;

Word
slotPtr()
{
    return ptr(kSlot, Tag::Other);
}

TEST(FullEmpty, NonTrappingLoadReadsEmptyWord)
{
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.ldnw(2, 1, 0);
    as.halt();
    Rig rig(as.finish());
    rig.mem.writeFe(kSlot, fixnum(5), false);   // empty
    rig.run();
    EXPECT_EQ(rig.proc.readReg(2), fixnum(5));  // data still moves
}

TEST(FullEmpty, JemptyDispatchesOnConditionBit)
{
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.ldnw(2, 1, 0);           // latches f/e state into PSR.F
    as.j(Cond::EMPTY, "was_empty");
    as.movi(3, 1);              // full path
    as.halt();
    as.bind("was_empty");
    as.movi(3, 2);
    as.halt();

    {
        Rig rig(as.finish());
        rig.mem.writeFe(kSlot, 0, false);
        rig.run();
        EXPECT_EQ(rig.proc.readReg(3), 2u) << "empty word -> Jempty";
    }
}

TEST(FullEmpty, JfullDispatchesOnConditionBit)
{
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.ldnw(2, 1, 0);
    as.j(Cond::FULL, "was_full");
    as.movi(3, 1);
    as.halt();
    as.bind("was_full");
    as.movi(3, 2);
    as.halt();
    Rig rig(as.finish());
    rig.mem.writeFe(kSlot, 0, true);
    rig.run();
    EXPECT_EQ(rig.proc.readReg(3), 2u);
}

TEST(FullEmpty, ConsumingLoadResetsTheBit)
{
    // ldenw: reset f/e bit, no trap, wait on miss (Table 2 type 6).
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.ldenw(2, 1, 0);
    as.halt();
    Rig rig(as.finish());
    rig.mem.writeFe(kSlot, fixnum(9), true);
    rig.run();
    EXPECT_EQ(rig.proc.readReg(2), fixnum(9));
    EXPECT_FALSE(rig.mem.isFull(kSlot)) << "ldenw must consume";
}

TEST(FullEmpty, ProducingStoreSetsTheBit)
{
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.movi(2, fixnum(11));
    as.stfnw(2, 1, 0);          // set-to-full store
    as.halt();
    Rig rig(as.finish());
    rig.mem.setFull(kSlot, false);
    rig.run();
    EXPECT_TRUE(rig.mem.isFull(kSlot));
    EXPECT_EQ(rig.mem.read(kSlot), fixnum(11));
}

TEST(FullEmpty, PlainStoreLeavesBitAlone)
{
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.movi(2, fixnum(3));
    as.stnw(2, 1, 0);
    as.halt();
    Rig rig(as.finish());
    rig.mem.setFull(kSlot, false);
    rig.run();
    EXPECT_FALSE(rig.mem.isFull(kSlot));
    EXPECT_EQ(rig.mem.read(kSlot), fixnum(3));
}

/** Build a program with an f/e trap handler that counts and skips. */
Program
trapCountProgram(bool store_variant)
{
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.movi(2, fixnum(1));
    if (store_variant)
        as.sttw(2, 1, 0);       // trap on full
    else
        as.ldtw(2, 1, 0);       // trap on empty
    as.movi(5, 1);              // reached only after skip
    as.halt();

    // Handler: g0++ and skip the faulting instruction.
    as.bind("fe_handler");
    as.addiR(reg::g(0), reg::g(0), 1);
    as.rettSkip();
    return as.finish();
}

TEST(FullEmpty, TrappingLoadOnEmptyRaisesFeEmpty)
{
    Program p = trapCountProgram(false);
    Rig rig(std::move(p));
    rig.proc.setTrapVector(TrapKind::FeEmpty,
                           rig.prog.entry("fe_handler"));
    rig.mem.writeFe(kSlot, fixnum(8), false);
    rig.run();
    EXPECT_EQ(rig.proc.readGlobal(0), 1u);
    EXPECT_EQ(rig.proc.readReg(5), 1u) << "rett skip must continue";
    EXPECT_EQ(rig.proc.statTraps[size_t(TrapKind::FeEmpty)].value(), 1.0);
}

TEST(FullEmpty, TrappingLoadOnFullSucceeds)
{
    Program p = trapCountProgram(false);
    Rig rig(std::move(p));
    rig.proc.setTrapVector(TrapKind::FeEmpty,
                           rig.prog.entry("fe_handler"));
    rig.mem.writeFe(kSlot, fixnum(8), true);
    rig.run();
    EXPECT_EQ(rig.proc.readGlobal(0), 0u);
    EXPECT_EQ(rig.proc.readReg(2), fixnum(8));
}

TEST(FullEmpty, TrappingStoreOnFullRaisesFeFull)
{
    Program p = trapCountProgram(true);
    Rig rig(std::move(p));
    rig.proc.setTrapVector(TrapKind::FeFull,
                           rig.prog.entry("fe_handler"));
    rig.mem.writeFe(kSlot, fixnum(8), true);
    rig.run();
    EXPECT_EQ(rig.proc.readGlobal(0), 1u);
    // The store must NOT have gone through.
    EXPECT_EQ(rig.mem.read(kSlot), fixnum(8));
}

TEST(FullEmpty, TrappingStoreOnEmptySucceeds)
{
    Program p = trapCountProgram(true);
    Rig rig(std::move(p));
    rig.proc.setTrapVector(TrapKind::FeFull,
                           rig.prog.entry("fe_handler"));
    rig.mem.writeFe(kSlot, fixnum(8), false);
    rig.run();
    EXPECT_EQ(rig.proc.readGlobal(0), 0u);
    EXPECT_EQ(rig.mem.read(kSlot), fixnum(1));
}

TEST(FullEmpty, TrapEntryCostsFiveCycles)
{
    // Compare a run that traps once (handler = rett skip) against the
    // same program with a full word: the delta must be the 5-cycle
    // entry plus the 2 handler instructions (add, rett).
    Program p1 = trapCountProgram(false);
    Rig trapping(std::move(p1));
    trapping.proc.setTrapVector(TrapKind::FeEmpty,
                                trapping.prog.entry("fe_handler"));
    trapping.mem.writeFe(kSlot, 0, false);
    uint64_t cycles_trap = trapping.run();

    Program p2 = trapCountProgram(false);
    Rig clean(std::move(p2));
    clean.proc.setTrapVector(TrapKind::FeEmpty,
                             clean.prog.entry("fe_handler"));
    clean.mem.writeFe(kSlot, 0, true);
    uint64_t cycles_clean = clean.run();

    // Trap path: 5 (entry) + add(1) + rett(1), and the faulting load
    // is skipped (not re-executed), saving its 1 cycle: net +6.
    EXPECT_EQ(cycles_trap - cycles_clean, 6u);
}

/**
 * Producer/consumer through a single word: the classic f/e use.
 * The producer stores-with-set; the consumer uses a consuming load
 * that would trap while empty, with a switch-spin style retry handler
 * that simply retries (single thread: producer runs first here).
 */
TEST(FullEmpty, ProducerConsumerHandshake)
{
    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    // Producer phase.
    as.movi(2, fixnum(321));
    as.stfnw(2, 1, 0);
    // Consumer phase: trapping consuming load.
    as.ldetw(3, 1, 0);
    as.halt();
    Rig rig(as.finish());
    rig.mem.setFull(kSlot, false);      // slot starts empty
    rig.run();
    EXPECT_EQ(rig.proc.readReg(3), fixnum(321));
    EXPECT_FALSE(rig.mem.isFull(kSlot)) << "ldetw consumed the value";
}

using FlavorParam = std::tuple<int, bool, bool>;

/** Property sweep: all 8 load flavors against full and empty words. */
class LoadFlavorTest : public ::testing::TestWithParam<FlavorParam>
{
};

TEST_P(LoadFlavorTest, Table2Semantics)
{
    auto [flavor, word_full, expect_trap_on_empty] = GetParam();
    bool fe_trap = flavor & 1;
    bool fe_modify = flavor & 2;
    (void)expect_trap_on_empty;

    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.load(2, 1, 0, fe_trap, fe_modify,
            (flavor & 4) ? MissPolicy::Trap : MissPolicy::Wait);
    as.halt();
    as.bind("handler");
    as.addiR(reg::g(0), reg::g(0), 1);
    as.rettSkip();

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FeEmpty, rig.prog.entry("handler"));
    rig.mem.writeFe(kSlot, fixnum(55), word_full);
    rig.run();

    bool trapped = rig.proc.readGlobal(0) == 1;
    EXPECT_EQ(trapped, fe_trap && !word_full);
    if (!trapped) {
        EXPECT_EQ(rig.proc.readReg(2), fixnum(55));
        EXPECT_EQ(rig.mem.isFull(kSlot), fe_modify ? false : word_full);
    } else {
        // No side effects on a trapping access.
        EXPECT_EQ(rig.mem.isFull(kSlot), word_full);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavorsBothStates, LoadFlavorTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Bool(),
                       ::testing::Values(false)));

/** Property sweep for the store duals: trap on *full*, may set full. */
class StoreFlavorTest : public ::testing::TestWithParam<FlavorParam>
{
};

TEST_P(StoreFlavorTest, Table2DualSemantics)
{
    auto [flavor, word_full, unused] = GetParam();
    bool fe_trap = flavor & 1;
    bool fe_modify = flavor & 2;
    (void)unused;

    Assembler as;
    as.bind("main");
    as.movi(1, slotPtr());
    as.movi(2, fixnum(9));
    as.store(2, 1, 0, fe_trap, fe_modify,
             (flavor & 4) ? MissPolicy::Trap : MissPolicy::Wait);
    as.halt();
    as.bind("handler");
    as.addiR(reg::g(0), reg::g(0), 1);
    as.rettSkip();

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FeFull, rig.prog.entry("handler"));
    rig.mem.writeFe(kSlot, fixnum(55), word_full);
    rig.run();

    bool trapped = rig.proc.readGlobal(0) == 1;
    EXPECT_EQ(trapped, fe_trap && word_full)
        << "stores trap on full locations";
    if (!trapped) {
        EXPECT_EQ(rig.mem.read(kSlot), fixnum(9));
        // 'f' flavors set the bit to full; others leave it alone.
        EXPECT_EQ(rig.mem.isFull(kSlot), fe_modify ? true : word_full);
    } else {
        EXPECT_EQ(rig.mem.read(kSlot), fixnum(55))
            << "no side effects on a trapping store";
        EXPECT_TRUE(rig.mem.isFull(kSlot));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavorsBothStates, StoreFlavorTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Bool(),
                       ::testing::Values(false)));

} // namespace
} // namespace april

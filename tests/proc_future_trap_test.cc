/**
 * @file
 * Hardware future detection (Sections 3.2, 4, 5): strict compute
 * instructions and memory address operands trap on a set LSB; the
 * trap handler can resolve the register and retry.
 */

#include <gtest/gtest.h>

#include "test_support/proc_rig.hh"

namespace april
{
namespace
{

using testutil::Rig;
using namespace tagged;

constexpr Addr kFut = 300;      ///< future object's value slot

/** Handler: resolve reg[TrapArg] from the future's value slot, retry. */
void
emitResolvingHandler(Assembler &as)
{
    as.bind("future_handler");
    as.rdpsr(reg::t(0));                    // preserve condition codes
    as.rdspec(reg::t(1), Spec::TrapArg);    // register index
    as.rdregx(reg::t(2), reg::t(1));        // the future pointer
    // Strip the tag bits to address the value slot (raw ops).
    as.sraiR(reg::t(3), reg::t(2), 3);
    as.slliR(reg::t(3), reg::t(3), 3);
    as.oriR(reg::t(3), reg::t(3), uint8_t(Tag::Other));
    as.load(reg::t(4), reg::t(3), 0, false, false, MissPolicy::Wait,
            /*strict=*/false);
    as.wrregx(reg::t(1), reg::t(4));        // patch the register
    as.addiR(reg::g(0), reg::g(0), 1);      // count resolutions
    as.wrpsr(reg::t(0));
    as.rettRetry();
}

TEST(FutureTrap, StrictAddTrapsAndResolves)
{
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kFut, Tag::Future));
    as.movi(2, fixnum(10));
    as.add(3, 1, 2);            // strict: traps, resolves, retries
    as.halt();
    emitResolvingHandler(as);

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FutureCompute,
                           rig.prog.entry("future_handler"));
    rig.mem.writeFe(kFut, fixnum(32), true);    // resolved future
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(3)), 42);
    EXPECT_EQ(rig.proc.readGlobal(0), 1u);
}

TEST(FutureTrap, SecondOperandAlsoChecked)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(10));
    as.movi(2, ptr(kFut, Tag::Future));
    as.add(3, 1, 2);
    as.halt();
    emitResolvingHandler(as);

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FutureCompute,
                           rig.prog.entry("future_handler"));
    rig.mem.writeFe(kFut, fixnum(5), true);
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(3)), 15);
}

TEST(FutureTrap, BothOperandsFutureTrapTwice)
{
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kFut, Tag::Future));
    as.movi(2, ptr(kFut, Tag::Future));
    as.add(3, 1, 2);
    as.halt();
    emitResolvingHandler(as);

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FutureCompute,
                           rig.prog.entry("future_handler"));
    rig.mem.writeFe(kFut, fixnum(21), true);
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(3)), 42);
    EXPECT_EQ(rig.proc.readGlobal(0), 2u) << "one trap per operand";
}

TEST(FutureTrap, RawOpsNeverTrap)
{
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kFut, Tag::Future));
    as.addiR(2, 1, 0);          // raw move of a future is fine
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(rig.proc.readReg(2), ptr(kFut, Tag::Future));
    EXPECT_EQ(rig.proc.statTraps[size_t(TrapKind::FutureCompute)].value(),
              0.0);
}

TEST(FutureTrap, FixnumsNeverTrap)
{
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(-1));
    as.movi(2, fixnum(1));
    as.add(3, 1, 2);
    as.halt();
    Rig rig(as.finish());
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(3)), 0);
}

TEST(FutureTrap, MemoryAddressOperandTraps)
{
    // Implicit touch on dereference (car of a future), Section 4.
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kFut, Tag::Future));
    as.ldnw(2, 1, 0);           // strict by default: address is future
    as.halt();
    emitResolvingHandler(as);

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FutureMemory,
                           rig.prog.entry("future_handler"));
    // The future resolved to a cons whose car holds 7.
    rig.mem.writeFe(kFut, ptr(400, Tag::Cons), true);
    rig.mem.write(400, fixnum(7));
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(2)), 7);
    EXPECT_EQ(rig.proc.statTraps[size_t(TrapKind::FutureMemory)].value(),
              1.0);
}

TEST(FutureTrap, ConsTaggedAddressDoesNotTrap)
{
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(400, Tag::Cons));
    as.ldnw(2, 1, 0);           // cons tag has LSB 0: no trap
    as.halt();
    Rig rig(as.finish());
    rig.mem.write(400, fixnum(9));
    rig.run();
    EXPECT_EQ(toInt(rig.proc.readReg(2)), 9);
}

TEST(FutureTrap, UnvectoredTrapPanics)
{
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kFut, Tag::Future));
    as.add(2, 1, 1);
    as.halt();
    Rig rig(as.finish());
    EXPECT_THROW(rig.run(), PanicError);
}

TEST(FutureTrap, TrapArgIdentifiesTheRegister)
{
    Assembler as;
    as.bind("main");
    as.movi(7, ptr(kFut, Tag::Future));
    as.movi(2, fixnum(1));
    as.add(3, 7, 2);
    as.halt();
    as.bind("h");
    as.rdspec(reg::g(1), Spec::TrapArg);
    as.rdspec(reg::g(2), Spec::TrapType);
    // Patch via WRREGX so the retry completes.
    as.movi(reg::t(0), fixnum(0));
    as.wrregx(reg::g(1), reg::t(0));
    as.rettRetry();

    Rig rig(as.finish());
    rig.proc.setTrapVector(TrapKind::FutureCompute, rig.prog.entry("h"));
    rig.run();
    EXPECT_EQ(rig.proc.readGlobal(1), 7u);
    EXPECT_EQ(rig.proc.readGlobal(2), Word(TrapKind::FutureCompute));
}

} // namespace
} // namespace april

/**
 * @file
 * Coarse-grain multithreading tests: the controller-forced context
 * switch on remote misses, the paper's 6-cycle switch trap handler
 * (11 cycles total, Section 6.1), switch-spinning rotation across
 * task frames, and the custom-APRIL 4-cycle hardware switch.
 */

#include <gtest/gtest.h>

#include "test_support/proc_rig.hh"

namespace april
{
namespace
{

using namespace tagged;

/**
 * A port where addresses >= remoteBase behave like remote cache
 * misses: the first `missCount` accesses force a context switch, then
 * the fill has "arrived" and accesses hit.
 */
class FakeRemotePort : public MemPort
{
  public:
    FakeRemotePort(SharedMemory *memory, Addr remote_base, int miss_count)
        : mem(memory), remoteBase(remote_base), missLeft(miss_count)
    {}

    MemResult
    access(const MemAccess &req) override
    {
        ++accesses;
        if (req.addr >= remoteBase && req.miss == MissPolicy::Trap &&
            req.trapsEnabled && missLeft > 0) {
            --missLeft;
            ++switchesForced;
            return MemResult::forceSwitch();
        }
        return applyFeAccess(mem->word(req.addr), req);
    }

    SharedMemory *mem;
    Addr remoteBase;
    int missLeft;
    int accesses = 0;
    int switchesForced = 0;
};

/** Emit the paper's context-switch trap handler (Section 6.1). */
void
emitSwitchHandler(Assembler &as)
{
    as.bind("cswitch");
    as.rdpsr(reg::t(0));    // 1: save PSR into a reserved reg
    as.incfp();             // 2: advance one task frame ("save; save"
    as.nop();               // 3:  costs two cycles on SPARC)
    as.wrpsr(reg::t(0));    // 4: restore the new context's PSR
    as.nop();               // 5: (the jmpl of SPARC's jmpl/rett pair)
    as.rettRetry();         // 6: resume via the new frame's PC chain
}

/** Voluntary switch-spin yield used by a running thread. */
void
emitYield(Assembler &as, const std::string &resume)
{
    as.moviLabel(reg::t(1), resume);
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    as.bind(resume);
}

constexpr Addr kRemote = 40000;

struct TwoFrameRig
{
    explicit TwoFrameRig(Program prog_, int miss_count = 1,
                         ProcParams::SwitchMode mode =
                             ProcParams::SwitchMode::TrapHandler)
        : prog(std::move(prog_)),
          mem({.numNodes = 1, .wordsPerNode = 1u << 16}),
          port(&mem, kRemote / 2, miss_count), io(),
          proc(makeParams(mode), &prog, &port, &io)
    {
        proc.reset(prog.entry("main"));
        if (prog.hasSymbol("cswitch")) {
            proc.setTrapVector(TrapKind::RemoteMiss,
                               prog.entry("cswitch"));
        }
        // Frame 1 hosts the worker thread.
        proc.frame(1).trapPC = prog.entry("worker");
        proc.frame(1).trapNPC = prog.entry("worker") + 1;
    }

    static ProcParams
    makeParams(ProcParams::SwitchMode mode)
    {
        ProcParams p;
        p.numFrames = 2;
        p.switchMode = mode;
        return p;
    }

    uint64_t
    run(uint64_t max_cycles = 100000)
    {
        uint64_t used = proc.run(max_cycles);
        if (!proc.halted())
            panic("did not halt; pc=", proc.pc());
        return used;
    }

    Program prog;
    SharedMemory mem;
    FakeRemotePort port;
    SimpleIoPort io;
    Processor proc;
};

Program
remoteLoadProgram()
{
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kRemote, Tag::Other));
    as.ldnt(2, 1, 0);           // remote: trap-on-miss flavor
    as.halt();

    as.bind("worker");
    as.addiR(reg::g(1), reg::g(1), 1);
    emitYield(as, "wret");
    as.j(Cond::AL, "worker");   // if resumed again, loop

    emitSwitchHandler(as);
    return as.finish();
}

TEST(Multithread, RemoteMissSwitchesToWorkerAndBack)
{
    TwoFrameRig rig(remoteLoadProgram(), 1);
    rig.mem.write(kRemote, fixnum(64));
    rig.run();
    // Worker ran exactly once, then yielded back; the retried load
    // completed with the filled data.
    EXPECT_EQ(rig.proc.readGlobal(1), 1u);
    EXPECT_EQ(rig.proc.frame(0).regs[2], fixnum(64));
    EXPECT_EQ(rig.port.switchesForced, 1);
}

TEST(Multithread, SwitchSpinRotatesUntilFillArrives)
{
    // Three consecutive forced misses: the processor bounces between
    // the blocked thread and the worker (switch spinning) until the
    // fill "arrives" on the fourth attempt.
    TwoFrameRig rig(remoteLoadProgram(), 3);
    rig.mem.write(kRemote, fixnum(64));
    rig.run();
    EXPECT_EQ(rig.proc.frame(0).regs[2], fixnum(64));
    EXPECT_EQ(rig.port.switchesForced, 3);
    EXPECT_EQ(rig.proc.readGlobal(1), 3u) << "worker ran between spins";
}

TEST(Multithread, ContextSwitchTrapTakesElevenCycles)
{
    // Section 6.1: 5 cycles of trap entry + 6 handler cycles = 11
    // cycles from the trapping instruction to the new thread's first
    // instruction.
    TwoFrameRig rig(remoteLoadProgram(), 1);
    rig.mem.write(kRemote, fixnum(1));
    rig.run();

    // movi(1) + ld attempt(1 cycle, becomes trap entry of 5 total)
    // + 6 handler cycles = first worker instruction at cycle 13;
    // verify via the trap-cycle and switch statistics instead of
    // eyeballing: entry squash was 5 cycles, handler is 6 insts.
    EXPECT_EQ(rig.proc.statTrapCycles.value(), 5.0);
    // Handler executed: rdpsr, incfp, nop, wrpsr, nop, rett = 6.
    // Worker yield also rotates once; total INCFPs = 2.
    EXPECT_EQ(rig.proc.statSwitches.value(), 2.0);
}

TEST(Multithread, ElevenCycleLatencyMeasuredDirectly)
{
    // Measure: run the identical program once with zero misses and
    // once with one miss; the extra cost of one switch-out/switch-in
    // round trip is 2 * 11 cycles minus overlap with the worker's
    // useful work. Here the worker does 1 add + an 8-cycle yield, so
    //   delta = 11 (out) + [1 + 8] (worker) + 11-5-6 overlap... —
    // instead of re-deriving, assert the documented identity:
    //   delta = 2 * 11 + worker_cycles - 1 (the retried load's first
    //           attempt is counted once).
    TwoFrameRig clean(remoteLoadProgram(), 0);
    clean.mem.write(kRemote, fixnum(1));
    uint64_t base = clean.run();

    TwoFrameRig missy(remoteLoadProgram(), 1);
    missy.mem.write(kRemote, fixnum(1));
    uint64_t with_miss = missy.run();

    // Worker body: add(1) + yield(movi,wrspec,add,wrspec,rdpsr,incfp,
    // wrpsr,rett = 8) = 9 cycles.
    const uint64_t worker_cycles = 9;
    // The 11-cycle switch (trap entry 5 + handler 6) includes the
    // faulting attempt's own cycle, which the clean run also pays, so
    // it contributes 10 extra cycles; the retried load adds 1 more.
    const uint64_t switch_out_extra = 10;
    EXPECT_EQ(with_miss - base, switch_out_extra + worker_cycles + 1);
}

TEST(Multithread, HardwareModeSwitchesInFourCycles)
{
    // Custom-APRIL estimate: a four-cycle context switch with no
    // handler instructions (Section 6.1).
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kRemote, Tag::Other));
    as.ldnt(2, 1, 0);
    as.halt();
    as.bind("worker");
    as.addiR(reg::g(1), reg::g(1), 1);
    as.incfp();                 // hardware switch back
    as.j(Cond::AL, "worker");

    TwoFrameRig rig(as.finish(), 1, ProcParams::SwitchMode::Hardware);
    rig.mem.write(kRemote, fixnum(8));
    rig.run();
    EXPECT_EQ(rig.proc.frame(0).regs[2], fixnum(8));
    EXPECT_EQ(rig.proc.readGlobal(1), 1u);
    // Two switches (out and back), each 4 cycles:
    // total = movi(1) + attempt(4: switch out) + add(1) + incfp(4)
    //         + retry(1) + halt(1) = 12.
    EXPECT_EQ(rig.proc.cycle(), 12u);
}

TEST(Multithread, HandlerAccessesAreHeldNotSwitched)
{
    // With traps disabled (inside a handler) the controller must not
    // force a switch: the request waits instead (MHOLD).
    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kRemote, Tag::Other));
    as.trap(0);                 // enter a software handler
    as.halt();
    as.bind("soft");
    as.ldnt(2, 1, 0);           // would force a switch in user mode
    as.rettSkip();

    Program prog = as.finish();
    SharedMemory mem({.numNodes = 1, .wordsPerNode = 1u << 16});
    FakeRemotePort port(&mem, kRemote / 2, 100);
    SimpleIoPort io;
    ProcParams params;
    Processor proc(params, &prog, &port, &io);
    proc.reset(prog.entry("main"));
    proc.setTrapVector(TrapKind::SoftTrap0, prog.entry("soft"));
    mem.write(kRemote, fixnum(5));
    proc.run(10000);
    ASSERT_TRUE(proc.halted());
    EXPECT_EQ(proc.readReg(2), fixnum(5));
    EXPECT_EQ(port.switchesForced, 0);
}

TEST(Multithread, IpiDeliversAsynchronousTrap)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 0);
    as.bind("spin");
    as.cmpiR(reg::g(2), 1);
    as.jRaw(Cond::NE, "spin");
    as.nop();
    as.halt();
    as.bind("ipi_handler");
    as.rdspec(reg::g(3), Spec::TrapArg);
    as.movi(reg::g(2), 1);
    as.rettRetry();

    Program prog = as.finish();
    SharedMemory mem({.numNodes = 1, .wordsPerNode = 1u << 12});
    PerfectMemPort port(&mem);
    SimpleIoPort io;
    Processor proc({}, &prog, &port, &io);
    proc.reset(prog.entry("main"));
    proc.setTrapVector(TrapKind::Ipi, prog.entry("ipi_handler"));

    for (int i = 0; i < 5; ++i)
        proc.tick();
    proc.postIpi(fixnum(99));
    proc.run(1000);
    ASSERT_TRUE(proc.halted());
    EXPECT_EQ(proc.readGlobal(3), fixnum(99));
}

} // namespace
} // namespace april

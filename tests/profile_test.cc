/**
 * @file
 * The cycle-accounting profiler end to end: PC-sampling grid algebra,
 * interval-sampler time series, per-node bucket attribution on a full
 * ALEWIFE machine, and the hard invariants — sum(buckets) ==
 * totalCycles on every node, and bit-identical profiles whether the
 * machine fast-forwards idle cycles or ticks through them (§7.5).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "json_test_util.hh"
#include "machine/alewife_machine.hh"
#include "machine/driver.hh"
#include "profile/interval.hh"
#include "profile/pc_sampler.hh"
#include "profile/report.hh"
#include "test_support/machine_workloads.hh"

namespace april
{
namespace
{

using json::Json;
using json::parseJson;

// --- PcSampler unit tests --------------------------------------------

TEST(PcSampler, SamplesOnTheGlobalCycleGrid)
{
    profile::PcSampler s(10);
    for (uint64_t c = 1; c <= 100; ++c)
        s.tick(c, 0x40);
    EXPECT_EQ(s.totalSamples(), 10u);
    EXPECT_EQ(s.histogram().at(0x40), 10u);
}

TEST(PcSampler, SkipCreditsExactlyTheTickedCount)
{
    // A skipped window must produce the same samples a tick loop
    // over the same cycles would: count of grid points in (c, c+n].
    for (uint64_t start : {0ull, 3ull, 9ull, 10ull, 17ull}) {
        for (uint64_t len : {1ull, 5ull, 10ull, 23ull}) {
            profile::PcSampler ticked(10);
            for (uint64_t c = start + 1; c <= start + len; ++c)
                ticked.tick(c, 7);
            profile::PcSampler skipped(10);
            skipped.skip(start, len, 7);
            EXPECT_EQ(ticked.totalSamples(), skipped.totalSamples())
                << "start=" << start << " len=" << len;
        }
    }
}

TEST(PcSampler, PeriodZeroDisablesSampling)
{
    profile::PcSampler s(0);
    s.tick(1, 4);
    s.skip(0, 100, 4);
    EXPECT_EQ(s.totalSamples(), 0u);
}

// --- IntervalSampler unit tests --------------------------------------

TEST(IntervalSampler, CollectsDottedColumnsAndRows)
{
    stats::Group root("m");
    stats::Group child("proc0", &root);
    stats::Scalar top(&root, "cycles", "");
    stats::Scalar inner(&child, "insts", "");

    profile::IntervalSampler s(100, root);
    ASSERT_EQ(s.columns().size(), 2u);
    EXPECT_EQ(s.columns()[0], "m.cycles");
    EXPECT_EQ(s.columns()[1], "m.proc0.insts");

    top += 5;
    inner += 2;
    EXPECT_EQ(s.nextSampleCycle(0), 100u);
    EXPECT_EQ(s.nextSampleCycle(100), 200u);
    s.sampleIfDue(100);
    top += 5;
    s.sampleIfDue(150);         // not a boundary: ignored
    s.sampleIfDue(200);
    ASSERT_EQ(s.rows().size(), 2u);
    EXPECT_EQ(s.rows()[0].cycle, 100u);
    EXPECT_DOUBLE_EQ(s.rows()[0].values[0], 5.0);
    EXPECT_DOUBLE_EQ(s.rows()[1].values[0], 10.0);

    std::ostringstream os;
    s.writeCsv(os);
    EXPECT_EQ(os.str().substr(0, 24), "cycle,m.cycles,m.proc0.i");
}

TEST(IntervalSampler, SampleIfDueIsIdempotentPerBoundary)
{
    stats::Group root("m");
    stats::Scalar top(&root, "x", "");
    profile::IntervalSampler s(50, root);
    s.sampleIfDue(50);
    s.sampleIfDue(50);          // the run loop may land here twice
    EXPECT_EQ(s.rows().size(), 1u);
}

// --- full-machine invariants -----------------------------------------

struct StressRun
{
    uint64_t cycles = 0;
    std::string breakdown;      ///< profile::cycleBreakdownJson
    std::string profileJson;
    std::string seriesCsv;
    uint64_t samples0 = 0;      ///< node 0 PC samples
    uint64_t proc0Cycles = 0;
};

StressRun
runStress(bool cycle_skip)
{
    constexpr uint32_t kNodes = 4;
    Program prog = testutil::buildStallStress(kNodes);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.bootRuntime = false;
    p.cycleSkip = cycle_skip;
    p.profile = true;
    p.profilePeriod = 64;
    p.statsInterval = 512;
    AlewifeMachine m(p, &prog);
    testutil::bootStallStress(m, prog);
    m.run(20'000'000);
    EXPECT_TRUE(m.halted());
    EXPECT_TRUE(m.quiesce(1'000'000));

    StressRun out;
    out.cycles = m.cycle();
    profile::ProfileSource src = m.profileSource();
    out.breakdown = profile::cycleBreakdownJson(src.procs);
    std::ostringstream pj;
    profile::writeProfileJson(pj, src);
    out.profileJson = pj.str();
    std::ostringstream cs;
    src.intervals->writeCsv(cs);
    out.seriesCsv = cs.str();
    out.samples0 = src.samplers[0]->totalSamples();
    out.proc0Cycles = uint64_t(src.procs[0]->statCycles.value());
    return out;
}

TEST(ProfileMachine, BucketsSumToTotalCyclesOnEveryNode)
{
    StressRun run = runStress(true);
    Json profile = parseJson(run.profileJson);
    const auto &nodes = profile.at("nodes").array;
    ASSERT_EQ(nodes.size(), 4u);
    for (const Json &node : nodes) {
        double sum = 0;
        for (const auto &[name, v] : node.at("buckets").object)
            sum += v.number;
        EXPECT_EQ(sum, node.at("cycles").number)
            << "node " << node.at("node").number;
        // The frame matrix is a refinement of the same cycles.
        double frame_sum = 0;
        for (const Json &row : node.at("frames").array)
            for (const Json &v : row.array)
                frame_sum += v.number;
        EXPECT_EQ(frame_sum, node.at("cycles").number);
        // The stall-stress mix must actually exercise the buckets.
        EXPECT_GT(node.at("buckets").at("Useful").number, 0.0);
        EXPECT_GT(node.at("buckets").at("Hazard").number, 0.0);
    }
    EXPECT_GT(profile.at("machine").at("utilization").number, 0.0);
    EXPECT_LE(profile.at("machine").at("utilization").number, 1.0);
}

TEST(ProfileMachine, BitIdenticalUnderCycleSkipping)
{
    StressRun on = runStress(true);
    StressRun off = runStress(false);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.breakdown, off.breakdown);
    EXPECT_EQ(on.profileJson, off.profileJson);
    EXPECT_EQ(on.seriesCsv, off.seriesCsv);
}

TEST(ProfileMachine, PcSampleCountMatchesTheGrid)
{
    StressRun run = runStress(true);
    // Node 0 never parks before it halts, so its core ticks (or
    // skip-credits) every one of its cycles: exactly one sample per
    // full period on the global grid.
    EXPECT_EQ(run.samples0, run.proc0Cycles / 64);
}

// --- the Mul-T driver path -------------------------------------------

TEST(ProfileDriver, ProfileJsonAndSeriesComeBack)
{
    DriverOptions o = DriverOptions::april(
        mult::CompileOptions::FutureMode::Eager, 2);
    o.profile = true;
    o.profilePeriod = 32;
    o.statsInterval = 1024;
    DriverResult r = runMultProgram(
        "(define (main) (+ (future 20) (future 3)))", o);
    EXPECT_EQ(r.result, tagged::fixnum(23));

    Json profile = parseJson(r.profileJson);
    EXPECT_EQ(profile.at("schemaVersion").number, 1.0);
    EXPECT_EQ(profile.at("totalCycles").number, double(r.cycles));
    ASSERT_EQ(profile.at("nodes").array.size(), 2u);
    for (const Json &node : profile.at("nodes").array) {
        double sum = 0;
        for (const auto &[name, v] : node.at("buckets").object)
            sum += v.number;
        EXPECT_EQ(sum, node.at("cycles").number);
        EXPECT_GT(node.at("samples").number, 0.0);
        EXPECT_FALSE(node.at("hotspots").array.empty());
        // Hotspots symbolize against the program's label table (the
        // raw "pc<N>" form is only a fallback for unlabeled images).
        const Json &top = node.at("hotspots").array[0];
        EXPECT_FALSE(top.at("symbol").str.empty());
        EXPECT_NE(top.at("symbol").str.rfind("pc", 0), 0u);
    }
    EXPECT_EQ(r.statsSeriesCsv.substr(0, 6), "cycle,");
    EXPECT_NE(r.statsSeriesCsv.find("proc0.cyclesUseful"),
              std::string::npos);
}

TEST(ProfileDriver, IdenticalAcrossSkipModes)
{
    DriverOptions o = DriverOptions::april(
        mult::CompileOptions::FutureMode::Lazy, 2);
    o.profile = true;
    o.statsInterval = 2048;
    DriverResult on = runMultProgram(
        "(define (fib n) (if (< n 2) n"
        " (+ (future (fib (- n 1))) (fib (- n 2)))))"
        "(define (main) (fib 8))", o);
    o.cycleSkip = false;
    DriverResult off = runMultProgram(
        "(define (fib n) (if (< n 2) n"
        " (+ (future (fib (- n 1))) (fib (- n 2)))))"
        "(define (main) (fib 8))", o);
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.profileJson, off.profileJson);
    EXPECT_EQ(on.statsSeriesCsv, off.statsSeriesCsv);
}

// --- report formats --------------------------------------------------

TEST(ProfileReport, TextFoldedAndCountersAreWellFormed)
{
    StressRun run = runStress(true);
    Program prog = testutil::buildStallStress(4);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.bootRuntime = false;
    p.profile = true;
    p.statsInterval = 512;
    AlewifeMachine m(p, &prog);
    testutil::bootStallStress(m, prog);
    m.run(20'000'000);
    ASSERT_TRUE(m.halted());
    profile::ProfileSource src = m.profileSource();

    std::ostringstream text;
    profile::writeProfileText(text, src, 3);
    EXPECT_NE(text.str().find("cycle breakdown"), std::string::npos);
    EXPECT_NE(text.str().find("Useful"), std::string::npos);

    std::ostringstream folded;
    profile::writeFolded(folded, src);
    EXPECT_EQ(folded.str().substr(0, 5), "node0");
    EXPECT_NE(folded.str().find(';'), std::string::npos);

    std::ostringstream counters;
    profile::writeCounterTrace(counters, src);
    Json trace = parseJson(counters.str());
    EXPECT_FALSE(trace.at("traceEvents").array.empty());
    bool found_counter = false;
    for (const Json &ev : trace.at("traceEvents").array)
        if (ev.at("ph").str == "C")
            found_counter = true;
    EXPECT_TRUE(found_counter);
}

} // namespace
} // namespace april

/**
 * @file
 * Futures end to end: eager (normal) task creation, lazy task
 * creation with continuation stealing, blocking touches, and
 * multiprocessor execution with work stealing — the machinery behind
 * Table 3.
 */

#include <gtest/gtest.h>

#include "test_support/mult_run.hh"

namespace april
{
namespace
{

using testutil::runMult;
using testutil::RunResult;
using tagged::fixnum;
using FM = mult::CompileOptions::FutureMode;

const std::string kFib =
    "(define (fib n)"
    "  (if (< n 2) n (+ (future (fib (- n 1)))"
    "                   (future (fib (- n 2))))))"
    "(define (main) (fib 12))";

mult::CompileOptions
mode(FM m, bool sw = false)
{
    mult::CompileOptions c;
    c.futures = m;
    c.softwareChecks = sw;
    return c;
}

TEST(Futures, EagerSingleProcessor)
{
    auto r = runMult(kFib, mode(FM::Eager), 1);
    EXPECT_EQ(r.result, fixnum(144));
    EXPECT_GT(r.spawns, 100u) << "every future creates a task";
    EXPECT_GT(r.blocks, 0u) << "touches of queued tasks must block";
}

TEST(Futures, EagerTwoProcessors)
{
    auto r = runMult(kFib, mode(FM::Eager), 2);
    EXPECT_EQ(r.result, fixnum(144));
    EXPECT_GT(r.steals, 0u) << "the idle processor steals tasks";
}

TEST(Futures, EagerFourProcessorsSpeedup)
{
    auto r1 = runMult(kFib, mode(FM::Eager), 1);
    auto r4 = runMult(kFib, mode(FM::Eager), 4);
    EXPECT_EQ(r4.result, fixnum(144));
    EXPECT_LT(r4.cycles, r1.cycles)
        << "4 processors must beat 1 on parallel fib";
}

TEST(Futures, LazySingleProcessorNeverSpawns)
{
    // The whole point of lazy task creation: on one processor the
    // program degenerates to sequential calls — no futures, no tasks,
    // no blocks (Section 3.2).
    auto r = runMult(kFib, mode(FM::Lazy), 1);
    EXPECT_EQ(r.result, fixnum(144));
    EXPECT_EQ(r.spawns, 0u);
    EXPECT_EQ(r.steals, 0u);
    EXPECT_EQ(r.blocks, 0u);
}

TEST(Futures, LazyOverheadIsSmall)
{
    // Paper: lazy task creation costs ~1.5x sequential for fib
    // (Table 3, Apr-lazy column "1" vs "T seq").
    auto seq = runMult(kFib, mode(FM::Erase), 1);
    auto lazy = runMult(kFib, mode(FM::Lazy), 1);
    double ratio = double(lazy.cycles) / double(seq.cycles);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 2.5) << "lazy must be far cheaper than eager";
}

TEST(Futures, EagerOverheadIsLarge)
{
    // Paper: normal task creation costs ~14x sequential for fib on
    // APRIL (Table 3). Require eager >> lazy without pinning exact
    // constants.
    auto seq = runMult(kFib, mode(FM::Erase), 1);
    auto eager = runMult(kFib, mode(FM::Eager), 1);
    auto lazy = runMult(kFib, mode(FM::Lazy), 1);
    EXPECT_GT(double(eager.cycles) / double(seq.cycles), 4.0);
    EXPECT_GT(eager.cycles, 2 * lazy.cycles);
}

TEST(Futures, LazyTwoProcessorsStealsAndAgrees)
{
    auto r = runMult(kFib, mode(FM::Lazy), 2);
    EXPECT_EQ(r.result, fixnum(144));
    EXPECT_GT(r.steals, 0u) << "idle processor must steal a marker";
}

TEST(Futures, LazyFourProcessorsSpeedup)
{
    const std::string fib16 =
        "(define (fib n)"
        "  (if (< n 2) n (+ (future (fib (- n 1)))"
        "                   (future (fib (- n 2))))))"
        "(define (main) (fib 16))";
    auto r1 = runMult(fib16, mode(FM::Lazy), 1);
    auto r4 = runMult(fib16, mode(FM::Lazy), 4);
    EXPECT_EQ(r1.result, fixnum(987));
    EXPECT_EQ(r4.result, fixnum(987));
    EXPECT_LT(double(r4.cycles), 0.6 * double(r1.cycles));
}

TEST(Futures, EagerSixteenProcessors)
{
    auto r = runMult(kFib, mode(FM::Eager), 16);
    EXPECT_EQ(r.result, fixnum(144));
}

TEST(Futures, LazySixteenProcessors)
{
    auto r = runMult(kFib, mode(FM::Lazy), 16);
    EXPECT_EQ(r.result, fixnum(144));
}

TEST(Futures, EncoreEagerSingleProcessor)
{
    // The Encore baseline: software checks + TAS synchronization.
    auto r = runMult(kFib, mode(FM::Eager, true), 1);
    EXPECT_EQ(r.result, fixnum(144));
    EXPECT_GT(r.spawns, 100u);
}

TEST(Futures, EncoreEagerFourProcessors)
{
    auto r = runMult(kFib, mode(FM::Eager, true), 4);
    EXPECT_EQ(r.result, fixnum(144));
}

TEST(Futures, EncoreIsSlowerThanApril)
{
    // Table 3: the Encore implementation of futures costs about twice
    // APRIL's at every processor count.
    auto april = runMult(kFib, mode(FM::Eager), 1);
    auto encore = runMult(kFib, mode(FM::Eager, true), 1);
    EXPECT_GT(encore.cycles, april.cycles);
}

TEST(Futures, FutureValueFlowsThroughDataStructures)
{
    // Futures are first-class: storing into a cons and touching later
    // must work via the memory-instruction future trap (car of a
    // future-valued pair reference).
    auto r = runMult(
        "(define (slow x) (+ x 1))"
        "(define (main)"
        "  (let ((p (cons (future (slow 41)) nil)))"
        "    (touch (car p))))",
        mode(FM::Eager), 2);
    EXPECT_EQ(r.result, fixnum(42));
}

TEST(Futures, NestedFuturesResolveInOrder)
{
    auto r = runMult(
        "(define (add1 x) (+ x 1))"
        "(define (main)"
        "  (touch (future (add1 (touch (future (add1 40)))))))",
        mode(FM::Eager), 2);
    EXPECT_EQ(r.result, fixnum(42));
}

TEST(Futures, LiftedFutureBodyCapturesFreeVariables)
{
    // (future <non-call>) exercises lambda lifting.
    auto r = runMult(
        "(define (main)"
        "  (let ((a 30) (b 12))"
        "    (touch (future (+ a b)))))",
        mode(FM::Eager), 2);
    EXPECT_EQ(r.result, fixnum(42));

    r = runMult(
        "(define (main)"
        "  (let ((a 30) (b 12))"
        "    (touch (future (+ a b)))))",
        mode(FM::Lazy), 2);
    EXPECT_EQ(r.result, fixnum(42));
}

TEST(Futures, ParallelVectorFill)
{
    // Data-structure writes from parallel tasks, joined by touches.
    const std::string src =
        "(define (work i) (* i i))"
        "(define (fill v i n)"
        "  (if (= i n) 0"
        "      (begin (vector-set! v i (future (work i)))"
        "             (fill v (+ i 1) n))))"
        "(define (sum v i n)"
        "  (if (= i n) 0 (+ (touch (vector-ref v i)) (sum v (+ i 1) n))))"
        "(define (main)"
        "  (let ((v (make-vector 20 0)))"
        "    (begin (fill v 0 20) (sum v 0 20))))";
    int expect = 0;
    for (int i = 0; i < 20; ++i)
        expect += i * i;
    auto r = runMult(src, mode(FM::Eager), 4);
    EXPECT_EQ(r.result, fixnum(expect));
    auto l = runMult(src, mode(FM::Lazy), 4);
    EXPECT_EQ(l.result, fixnum(expect));
}

TEST(Futures, DeterministicAcrossSeedsInResult)
{
    // Scheduling is seed-dependent; results must not be.
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        rt::RuntimeOptions ropts;
        Assembler as;
        rt::Runtime runtime(ropts);
        runtime.emit(as);
        mult::Compiler compiler(as, mode(FM::Lazy));
        compiler.compileSource(kFib);
        Program prog = as.finish();

        PerfectMachineParams mp;
        mp.numNodes = 3;
        mp.seed = seed;
        PerfectMachine machine(mp, &prog, runtime);
        machine.run(50'000'000);
        ASSERT_TRUE(machine.halted());
        EXPECT_EQ(machine.console().back(), fixnum(144));
    }
}

} // namespace
} // namespace april

/**
 * @file
 * Cycle-exact validation of the run-time system's trap costs against
 * the paper's measurements:
 *
 *   Section 6.1: the context-switch trap handler runs in 6 cycles,
 *                11 including trap entry.
 *   Section 6.2: "Our future touch trap handler takes 23 cycles to
 *                execute if the future is resolved."
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"
#include "runtime/runtime.hh"

namespace april
{
namespace
{

using namespace tagged;

struct RuntimeRig
{
    explicit RuntimeRig(void (*emit_main)(Assembler &))
    {
        Assembler as;
        rt::Runtime runtime;
        runtime.emit(as);
        as.bind(rt::sym::userMain);     // satisfy rt$boot's reference
        as.bind("test$main");
        emit_main(as);
        prog = as.finish();

        mem = std::make_unique<SharedMemory>(
            MemoryParams{.numNodes = 1, .wordsPerNode = 1u << 18});
        rt::Runtime::initNode(*mem, 0);
        port = std::make_unique<PerfectMemPort>(mem.get());
        io = std::make_unique<SimpleIoPort>();
        proc = std::make_unique<Processor>(ProcParams{}, &prog,
                                           port.get(), io.get());
        rt::Runtime::bootProcessor(*proc, prog, *mem, 0, 1);
        // Redirect only the PC chain: boot state (globals, parked
        // frames, vectors) must stay intact.
        proc->setPcChain(prog.entry("test$main"),
                         prog.entry("test$main") + 1);
    }

    uint64_t
    run()
    {
        uint64_t used = proc->run(100000);
        if (!proc->halted())
            panic("trap-cost program did not halt");
        return used;
    }

    Program prog;
    std::unique_ptr<SharedMemory> mem;
    std::unique_ptr<PerfectMemPort> port;
    std::unique_ptr<SimpleIoPort> io;
    std::unique_ptr<Processor> proc;
};

constexpr Addr kFut = 4096;     ///< a future object's address

TEST(RuntimeTrapCost, ResolvedFutureTouchIs23Cycles)
{
    // Strict add on a resolved future vs the same add on a plain
    // value: the delta must be exactly the paper's 23 cycles (the
    // faulting attempt is re-executed after the handler, adding 1,
    // and the clean run pays the add once, subtracting 1).
    auto emit_trap = +[](Assembler &as) {
        as.movi(1, ptr(kFut, Tag::Future));
        as.movi(2, fixnum(10));
        as.add(3, 1, 2);
        as.halt();
    };
    auto emit_clean = +[](Assembler &as) {
        as.movi(1, fixnum(32));
        as.movi(2, fixnum(10));
        as.add(3, 1, 2);
        as.halt();
    };

    RuntimeRig trap_rig(emit_trap);
    trap_rig.mem->writeFe(kFut + rt::fut::value, fixnum(32), true);
    uint64_t with_trap = trap_rig.run();
    EXPECT_EQ(trap_rig.proc->readReg(3), fixnum(42));

    RuntimeRig clean_rig(emit_clean);
    uint64_t clean = clean_rig.run();
    EXPECT_EQ(clean_rig.proc->readReg(3), fixnum(42));

    EXPECT_EQ(with_trap - clean, 23u)
        << "Section 6.2: resolved future touch = 23 cycles";
}

TEST(RuntimeTrapCost, ContextSwitchHandlerIsSixInstructions)
{
    // The Section 6.1 handler: rdpsr, save, save, wrpsr, jmpl, rett.
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    as.bind(rt::sym::userMain);
    as.halt();
    Program prog = as.finish();
    uint32_t start = prog.entry(rt::sym::cswitch);
    // Count instructions up to and including the RETT.
    uint32_t len = 0;
    while (prog.at(start + len).op != Opcode::RETT)
        ++len;
    ++len;
    EXPECT_EQ(len, 6u) << "11 cycles total with the 5-cycle trap entry";
}

TEST(RuntimeTrapCost, FutureTouchHandlerFastPathIs18Instructions)
{
    // 5 (entry) + 18 (handler to RETT) = 23.
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    as.bind(rt::sym::userMain);
    as.halt();
    Program prog = as.finish();
    uint32_t start = prog.entry(rt::sym::futureTouch);
    uint32_t len = 0;
    while (prog.at(start + len).op != Opcode::RETT)
        ++len;
    ++len;
    EXPECT_EQ(len, 18u);
}

TEST(RuntimeTrapCost, ChainedFuturesTouchTwice)
{
    // A future resolving to another future re-traps on retry; each
    // resolved hop costs 23 cycles.
    auto emit = +[](Assembler &as) {
        as.movi(1, ptr(kFut, Tag::Future));
        as.movi(2, fixnum(10));
        as.add(3, 1, 2);
        as.halt();
    };
    RuntimeRig rig(emit);
    // future at kFut resolves to a future at kFut+16, which resolves
    // to 32.
    rig.mem->writeFe(kFut + rt::fut::value,
                     ptr(kFut + 16, Tag::Future), true);
    rig.mem->writeFe(kFut + 16 + rt::fut::value, fixnum(32), true);
    uint64_t cycles = rig.run();
    EXPECT_EQ(rig.proc->readReg(3), fixnum(42));

    auto emit_clean = +[](Assembler &as) {
        as.movi(1, fixnum(32));
        as.movi(2, fixnum(10));
        as.add(3, 1, 2);
        as.halt();
    };
    RuntimeRig clean(emit_clean);
    EXPECT_EQ(cycles - clean.run(), 46u) << "two 23-cycle touches";
}

TEST(RuntimeTrapCost, UnresolvedTouchBlocksIntoScheduler)
{
    // With an empty value slot the handler must unload the thread and
    // fall into the scheduler (which spins: no other work here).
    auto emit = +[](Assembler &as) {
        as.movi(1, ptr(kFut, Tag::Future));
        as.movi(2, fixnum(10));
        as.add(3, 1, 2);
        as.halt();
    };
    RuntimeRig rig(emit);
    rig.mem->setFull(kFut + rt::fut::value, false);     // unresolved
    rig.proc->run(5000);
    EXPECT_FALSE(rig.proc->halted()) << "blocked thread cannot finish";
    // The thread descriptor must be queued on the future.
    Word waiters = rig.mem->read(kFut + rt::fut::waiters);
    EXPECT_NE(waiters, 0u) << "thread parked on the future's waiters";
}

} // namespace
} // namespace april

/**
 * @file
 * Figure 2's virtual-thread organization: "Threads in ALEWIFE are
 * virtual. Only a small subset of all threads can be physically
 * resident on the processors ... the set of task frames acts like a
 * cache on the virtual threads."
 *
 * These tests create far more threads than hardware task frames and
 * check that unloaded threads live on memory queues, are re-loaded on
 * demand, and that the frame count does not affect results.
 */

#include <gtest/gtest.h>

#include "test_support/mult_run.hh"

namespace april
{
namespace
{

using testutil::runMult;
using tagged::fixnum;
using FM = mult::CompileOptions::FutureMode;

const std::string kFib =
    "(define (fib n)"
    "  (if (< n 2) n (+ (future (fib (- n 1)))"
    "                   (future (fib (- n 2))))))"
    "(define (main) (fib 11))";

mult::CompileOptions
eager()
{
    mult::CompileOptions c;
    c.futures = FM::Eager;
    return c;
}

TEST(VirtualThreads, HundredsOfThreadsOnFourFrames)
{
    auto r = runMult(kFib, eager(), 1, 200'000'000, 1u << 20, 4);
    EXPECT_EQ(r.result, fixnum(89));
    // fib(11) creates ~460 tasks; far more than 4 frames can hold.
    EXPECT_GT(r.spawns, 200u);
    EXPECT_GT(r.blocks, 10u) << "threads must unload to memory queues";
    EXPECT_EQ(r.resumes, r.blocks)
        << "every unloaded thread must eventually be re-loaded";
}

TEST(VirtualThreads, SingleFrameStillCorrect)
{
    // Even one task frame works: the scheduler time-multiplexes all
    // virtual threads through it (loading/unloading via descriptors).
    auto r = runMult(kFib, eager(), 1, 200'000'000, 1u << 20, 1);
    EXPECT_EQ(r.result, fixnum(89));
}

TEST(VirtualThreads, FrameCountInvariantResults)
{
    for (uint32_t frames : {1u, 2u, 4u, 8u}) {
        auto r = runMult(kFib, eager(), 2, 200'000'000, 1u << 20,
                         frames);
        EXPECT_EQ(r.result, fixnum(89)) << frames << " frames";
    }
}

TEST(VirtualThreads, BlockedThreadsWaitOnFutures)
{
    // A chain of dependent futures: each touch blocks until the next
    // level resolves; the ready queue drains them in dependency order.
    const std::string chain =
        "(define (step x) (+ x 1))"
        "(define (chain n acc)"
        "  (if (= n 0) acc"
        "      (chain (- n 1) (touch (future (step acc))))))"
        "(define (main) (chain 50 0))";
    auto r = runMult(chain, eager(), 1);
    EXPECT_EQ(r.result, fixnum(50));
    EXPECT_EQ(r.spawns, 50u);
}

TEST(VirtualThreads, SchedulerPrefersLoadedWork)
{
    // With ample frames and one processor, lazy mode never unloads:
    // the loaded thread runs to completion (scheduling overhead 0).
    mult::CompileOptions lazy;
    lazy.futures = FM::Lazy;
    auto r = runMult(kFib, lazy, 1);
    EXPECT_EQ(r.blocks, 0u);
    EXPECT_EQ(r.resumes, 0u);
}

} // namespace
} // namespace april

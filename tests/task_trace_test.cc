/**
 * @file
 * Task-level observability (DESIGN.md §7.10): the probe notes fire,
 * the analysis pass mints tasks and builds the DAG, a lazy future
 * that is actually stolen produces the Spawn -> Steal -> Resolve span
 * chain with the wait attributed to the future cell, and the whole
 * report is byte-identical across cycle-skip on/off and host-thread
 * counts — the same differential guarantee the machine and coherence
 * traces already carry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "machine/alewife_machine.hh"
#include "machine/driver.hh"
#include "mult/compiler.hh"
#include "task/task_trace.hh"
#include "workloads/workloads.hh"

namespace april
{
namespace
{

// ---------------------------------------------------------------------
// Analysis unit tests on synthetic event streams
// ---------------------------------------------------------------------

task::TaskEvent
ev(uint64_t cycle, uint64_t work, uint32_t node, task::Ev kind,
   Addr addr = 0, uint32_t aux = 0)
{
    return {cycle, work, node, addr, aux, kind, 0};
}

TEST(TaskAnalysis, EagerSpawnStealRunResolveMintsOneTask)
{
    using task::Ev;
    std::vector<task::TaskEvent> log = {
        ev(10, 5, 0, Ev::Spawn, 100, 200),       // desc 100, future 200
        ev(20, 0, 1, Ev::StealTask, 100),        // node 1 stole it
        ev(21, 0, 1, Ev::Run, 100),
        ev(90, 50, 1, Ev::Resolve, 200),
    };
    task::AnalyzeParams p;
    p.numNodes = 2;
    p.totalCycles = 100;
    task::Report r = task::analyze(log, p);

    ASSERT_EQ(r.tasks.size(), 1u);
    const task::TaskInfo &t = r.tasks[0];
    EXPECT_EQ(t.spawnNode, 0u);
    EXPECT_EQ(t.runNode, 1u);
    EXPECT_TRUE(t.stolen);
    EXPECT_TRUE(t.ran);
    EXPECT_FALSE(t.lazy);
    EXPECT_EQ(t.spawnCycle, 10u);
    EXPECT_EQ(t.runCycle, 21u);
    EXPECT_EQ(t.resolveCycle, 90u);
    EXPECT_EQ(t.future, 200u);
    EXPECT_EQ(t.work, 50u);                      // resolve - run snapshot
    EXPECT_EQ(r.steals, 1u);
    EXPECT_EQ(r.spawns, 1u);
    EXPECT_EQ(r.totalWork, 50u);

    // The future's sync word knows its producer.
    ASSERT_EQ(r.syncWords.size(), 1u);
    EXPECT_EQ(r.syncWords[0].addr, 200u);
    EXPECT_EQ(r.syncWords[0].producer, t.id);
}

TEST(TaskAnalysis, BlockResumeChargesWaitToFutureAndTask)
{
    using task::Ev;
    std::vector<task::TaskEvent> log = {
        ev(10, 0, 0, Ev::Spawn, 100, 200),
        ev(12, 0, 0, Ev::Run, 100),
        ev(40, 10, 0, Ev::Block, 200, 77),       // blocks on future 200
        ev(300, 10, 0, Ev::Resume, 77),          // thread 77 comes back
        ev(400, 30, 0, Ev::Resolve, 200),
    };
    task::AnalyzeParams p;
    p.numNodes = 1;
    p.totalCycles = 500;
    task::Report r = task::analyze(log, p);

    ASSERT_EQ(r.tasks.size(), 1u);
    EXPECT_EQ(r.tasks[0].waitCycles, 260u);      // 300 - 40
    EXPECT_EQ(r.waitTotal, 260u);
    ASSERT_EQ(r.syncWords.size(), 1u);
    EXPECT_EQ(r.syncWords[0].totalWait, 260u);
    EXPECT_EQ(r.syncWords[0].blocks, 1u);
    EXPECT_EQ(r.health.lostWakeups, 0u);
}

TEST(TaskAnalysis, UnresumedBlockIsALostWakeup)
{
    using task::Ev;
    std::vector<task::TaskEvent> log = {
        ev(10, 0, 0, Ev::Spawn, 100, 200),
        ev(12, 0, 0, Ev::Run, 100),
        ev(40, 10, 0, Ev::Block, 200, 77),
    };
    task::Report r = task::analyze(log, {.numNodes = 1,
                                         .totalCycles = 100});
    EXPECT_EQ(r.health.lostWakeups, 1u);
}

TEST(TaskAnalysis, CriticalPathFollowsDependencyChain)
{
    using task::Ev;
    // Parent spawns child at work 10, blocks on its future at work
    // 30, child does 100 work, parent finishes with 20 more.
    std::vector<task::TaskEvent> log = {
        ev(5, 0, 0, Ev::Spawn, 50, 60),          // parent task
        ev(6, 0, 0, Ev::Run, 50),
        ev(10, 10, 0, Ev::Spawn, 100, 200),      // child (from parent)
        ev(20, 0, 1, Ev::StealTask, 100),
        ev(21, 0, 1, Ev::Run, 100),
        ev(30, 30, 0, Ev::Block, 200, 77),
        ev(200, 100, 1, Ev::Resolve, 200),       // child's 100 work
        ev(210, 30, 0, Ev::Resume, 77),
        ev(260, 50, 0, Ev::Resolve, 60),         // parent total work 50
    };
    task::Report r = task::analyze(log, {.numNodes = 2,
                                         .totalCycles = 300});
    ASSERT_EQ(r.tasks.size(), 2u);
    // Chain: parent start 0 + spawn offset 10 + child work 100 +
    // parent's post-wait work (50 - 30) = 130, beats the parent-only
    // 50 and child-only 110 paths.
    EXPECT_EQ(r.criticalPath, 130u);
    EXPECT_EQ(r.criticalChain.size(), 2u);
    EXPECT_TRUE(r.tasks[0].onCriticalPath);
    EXPECT_TRUE(r.tasks[1].onCriticalPath);
    EXPECT_EQ(r.totalWork, 150u);
}

TEST(TaskAnalysis, SpinEpisodesMergeAndStealConvoysDetected)
{
    using task::Ev;
    std::vector<task::TaskEvent> log;
    // 20 consecutive TAS retries on one word = one episode.
    for (uint64_t i = 0; i < 20; ++i)
        log.push_back(ev(100 + i * 3, 0, 0, Ev::TasRetry, 400));
    // 16 fruitless steal rounds on node 1 = one convoy.
    for (uint64_t i = 0; i < 16; ++i)
        log.push_back(ev(200 + i * 5, 0, 1, Ev::StealAttempt));
    task::Report r = task::analyze(log, {.numNodes = 2,
                                         .totalCycles = 1000,
                                         .convoyLength = 16});
    ASSERT_EQ(r.syncWords.size(), 1u);
    EXPECT_EQ(r.syncWords[0].episodes, 1u);
    EXPECT_EQ(r.syncWords[0].tasRetries, 20u);
    EXPECT_EQ(r.health.stealConvoys, 1u);
    EXPECT_EQ(r.stealAttempts, 16u);
}

// ---------------------------------------------------------------------
// Directed machine test: a lazy future actually stolen
// ---------------------------------------------------------------------

struct TaskedOut
{
    bool halted = false;
    uint64_t cycles = 0;
    std::vector<task::TaskEvent> events;
    std::string reportJson;
};

/** Lazy fib on a 2x2 ALEWIFE machine: idle nodes steal the deferred
 *  continuations, so the lazy claim race genuinely runs. */
TaskedOut
runLazyFib(bool skip, uint32_t threads)
{
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Lazy;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(10));
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 20;
    p.cycleSkip = skip;
    p.hostThreads = threads;
    p.taskTrace = true;
    p.controller.cache = {.lineWords = 4, .numLines = 512, .assoc = 4};
    AlewifeMachine m(p, &prog);
    m.run(80'000'000);

    TaskedOut t;
    t.halted = m.halted();
    t.cycles = m.cycle();
    t.events = m.taskTracer()->events();
    std::ostringstream os;
    m.writeTaskTrace(os);
    t.reportJson = os.str();
    return t;
}

TEST(TaskTrace, LazyStealProducesSpawnStealResolveChain)
{
    TaskedOut out = runLazyFib(true, 1);
    ASSERT_TRUE(out.halted);
    ASSERT_FALSE(out.events.empty());

    // The probe vocabulary fired: lazy markers were published, the
    // claim race ran, a thief resumed a continuation and futures
    // resolved.
    bool saw[task::kNumEvs] = {};
    for (const task::TaskEvent &e : out.events)
        saw[size_t(e.kind)] = true;
    EXPECT_TRUE(saw[size_t(task::Ev::SpawnLazy)]);
    EXPECT_TRUE(saw[size_t(task::Ev::StealWon)]);
    EXPECT_TRUE(saw[size_t(task::Ev::LazyPub)]);
    EXPECT_TRUE(saw[size_t(task::Ev::LazyResume)]);
    EXPECT_TRUE(saw[size_t(task::Ev::Resolve)]);
    EXPECT_TRUE(saw[size_t(task::Ev::Block)]);
    EXPECT_TRUE(saw[size_t(task::Ev::RootBegin)]);
    EXPECT_TRUE(saw[size_t(task::Ev::RootEnd)]);

    task::Report r = task::analyze(out.events, {.numNodes = 4,
                                                .totalCycles =
                                                    out.cycles});

    // At least one minted task is a stolen lazy continuation whose
    // span chain completed: spawned on the victim, run on the thief,
    // resolved with real work attributed.
    bool found_chain = false;
    for (const task::TaskInfo &t : r.tasks) {
        if (t.lazy && t.stolen && t.ran && t.resolveCycle > 0 &&
            t.spawnNode != t.runNode && t.future != 0) {
            EXPECT_LE(t.spawnCycle, t.runCycle);
            EXPECT_LT(t.runCycle, t.resolveCycle);
            found_chain = true;
        }
    }
    EXPECT_TRUE(found_chain)
        << "no lazy future was stolen and resolved";

    // Wait attribution lands on the future cell: some sync word was
    // blocked on, accumulated wait, and knows its producing task.
    bool found_wait = false;
    for (const task::SyncWord &w : r.syncWords) {
        if (w.blocks > 0 && w.totalWait > 0 && w.producer != 0)
            found_wait = true;
    }
    EXPECT_TRUE(found_wait)
        << "no wait was attributed to a produced future";

    // The DAG analysis produced a coherent latency-tolerance story.
    EXPECT_GT(r.totalWork, 0u);
    EXPECT_GT(r.criticalPath, 0u);
    EXPECT_LE(r.criticalPath, r.totalWork);
    EXPECT_GT(r.score, 0.0);
    EXPECT_LE(r.score, 1.0);
    EXPECT_FALSE(r.criticalChain.empty());
    EXPECT_GT(r.steals, 0u);
}

TEST(TaskTrace, ReportByteIdenticalAcrossSkipAndThreads)
{
    TaskedOut base = runLazyFib(true, 1);
    ASSERT_TRUE(base.halted);
    ASSERT_FALSE(base.reportJson.empty());

    TaskedOut noskip = runLazyFib(false, 1);
    EXPECT_TRUE(base.events == noskip.events);
    EXPECT_EQ(base.reportJson, noskip.reportJson);
    EXPECT_EQ(base.cycles, noskip.cycles);

    for (uint32_t threads : {2u, 4u}) {
        TaskedOut par = runLazyFib(true, threads);
        EXPECT_TRUE(base.events == par.events)
            << "event stream diverged at " << threads << " threads";
        EXPECT_EQ(base.reportJson, par.reportJson)
            << "report diverged at " << threads << " threads";
    }
}

// ---------------------------------------------------------------------
// Driver surface and Perfetto stitching
// ---------------------------------------------------------------------

TEST(TaskTrace, DriverReturnsTaskTraceJson)
{
    DriverOptions opts =
        DriverOptions::april(mult::CompileOptions::FutureMode::Lazy, 2);
    opts.taskTrace = true;
    DriverResult r = runMultProgram(workloads::fibSource(8), opts);
    ASSERT_FALSE(r.taskTraceJson.empty());
    EXPECT_NE(r.taskTraceJson.find("\"schemaVersion\":1"),
              std::string::npos);
    EXPECT_NE(r.taskTraceJson.find("\"criticalPath\""),
              std::string::npos);
    EXPECT_NE(r.taskTraceJson.find("\"score\""), std::string::npos);

    DriverOptions off =
        DriverOptions::april(mult::CompileOptions::FutureMode::Lazy, 2);
    DriverResult r2 = runMultProgram(workloads::fibSource(8), off);
    EXPECT_TRUE(r2.taskTraceJson.empty())
        << "task tracing was not requested";
}

TEST(TaskTrace, PerfettoStitchesTaskSpansIntoMachineTrace)
{
    DriverOptions opts =
        DriverOptions::april(mult::CompileOptions::FutureMode::Lazy, 2);
    opts.taskTrace = true;
    opts.traceEvents = true;
    DriverResult r = runMultProgram(workloads::fibSource(8), opts);
    ASSERT_FALSE(r.traceJson.empty());
    EXPECT_NE(r.traceJson.find("\"cat\":\"task\""), std::string::npos)
        << "task spans missing from the stitched Chrome trace";
}

TEST(TaskTrace, UntracedMachineHasNoTracer)
{
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Lazy;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(8));
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 20;
    p.controller.cache = {.lineWords = 4, .numLines = 512, .assoc = 4};
    AlewifeMachine m(p, &prog);
    EXPECT_EQ(m.taskTracer(), nullptr);
    std::ostringstream os;
    m.writeTaskTrace(os);
    EXPECT_TRUE(os.str().empty());
}

} // namespace
} // namespace april

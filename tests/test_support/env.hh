/**
 * @file
 * Environment-variable test knobs. CI uses these to scale test effort
 * (e.g. APRIL_FUZZ_ITERS) per job without rebuilding the binaries.
 */

#ifndef APRIL_TESTS_TEST_SUPPORT_ENV_HH
#define APRIL_TESTS_TEST_SUPPORT_ENV_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace april::testutil
{

/** The value of @p name, or @p fallback when unset/empty. */
inline std::string
envOr(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::string(v) : fallback;
}

/** Numeric env knob; accepts decimal or 0x-prefixed hex. */
inline uint64_t
envOrU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::stoull(v, nullptr, 0);
}

} // namespace april::testutil

#endif // APRIL_TESTS_TEST_SUPPORT_ENV_HH

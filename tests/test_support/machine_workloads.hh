/**
 * @file
 * Shared full-machine test workloads. The stall-stress program mixes
 * long arithmetic stalls with contended full/empty locking so both the
 * cycle-skipping fast path and the coherence protocol are genuinely
 * exercised; cycle_skip_test.cc and trace_test.cc run it differentially
 * (skip on vs. off) and must observe identical machines.
 */

#ifndef APRIL_TESTS_TEST_SUPPORT_MACHINE_WORKLOADS_HH
#define APRIL_TESTS_TEST_SUPPORT_MACHINE_WORKLOADS_HH

#include <sstream>
#include <string>
#include <vector>

#include "machine/alewife_machine.hh"

namespace april::testutil
{

constexpr Addr kStressLock = 400;
constexpr Addr kStressCount = 404;
constexpr int kStressIters = 30;

/**
 * All nodes hammer a shared f/e-locked counter; a DIV per iteration
 * adds long stall windows so the skip path genuinely engages between
 * bursts of coherence traffic. Node 0 spins until every increment has
 * landed, prints the total and halts the machine.
 */
inline Program
buildStallStress(uint32_t nodes)
{
    using tagged::fixnum;
    using tagged::ptr;

    Assembler as;
    as.bind("worker");
    as.movi(1, ptr(kStressLock, Tag::Other));
    as.movi(2, ptr(kStressCount, Tag::Other));
    as.movi(3, 0);                      // iteration count
    as.movi(7, fixnum(84));             // DIV operands (future-free)
    as.movi(8, fixnum(4));
    as.bind("loop");
    as.div(9, 7, 8);                    // long stall: skippable window
    as.bind("acq");
    as.ldenw(4, 1, 0);
    as.jRaw(Cond::EMPTY, "acq");
    as.nop();
    as.ldnw(5, 2, 0);
    as.addi(5, 5, int32_t(fixnum(1)));
    as.stnw(5, 2, 0);
    as.stfnw(reg::r0, 1, 0);            // release: set full
    as.addiR(3, 3, 1);
    as.cmpiR(3, kStressIters);
    as.jRaw(Cond::LT, "loop");
    as.nop();
    // Node 0 waits for the full count, reports it, stops the machine;
    // the other nodes simply halt their cores.
    as.ldio(6, int(IoReg::NodeId));
    as.cmpiR(6, 0);
    as.jRaw(Cond::NE, "done");
    as.nop();
    as.bind("wait");
    as.ldnw(5, 2, 0);
    as.cmpiR(5, int32_t(fixnum(int32_t(nodes) * kStressIters)));
    as.jRaw(Cond::NE, "wait");
    as.nop();
    as.stio(int(IoReg::ConsoleOut), 5);
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("done");
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    return as.finish();
}

/** Point every core of @p m at the stall-stress entry and handlers. */
inline void
bootStallStress(AlewifeMachine &m, const Program &prog)
{
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        Processor &proc = m.proc(n);
        proc.reset(prog.entry("worker"));
        proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
        proc.setTrapVector(TrapKind::FeEmpty, prog.entry("cswitch"));
        for (uint32_t f = 1; f < proc.numFrames(); ++f) {
            proc.frame(f).trapPC = prog.entry("fyield");
            proc.frame(f).trapNPC = prog.entry("fyield") + 1;
            proc.frame(f).trapRegs[0] = psr::ET;
        }
    }
    m.memory().write(kStressCount, tagged::fixnum(0));
}

/** Everything observable about a finished machine run. */
struct MachineOut
{
    bool halted = false;
    uint64_t cycles = 0;
    std::vector<Word> console;
    std::string stats;          ///< full dump: every stat of every node
};

inline MachineOut
finishMachine(AlewifeMachine &m)
{
    MachineOut out;
    out.halted = m.halted();
    out.cycles = m.cycle();
    out.console = m.console();
    std::ostringstream os;
    m.dump(os);
    out.stats = os.str();
    return out;
}

} // namespace april::testutil

#endif // APRIL_TESTS_TEST_SUPPORT_MACHINE_WORKLOADS_HH

/** @file Helpers to compile and run Mul-T programs in tests. */

#ifndef APRIL_TESTS_TEST_SUPPORT_MULT_RUN_HH
#define APRIL_TESTS_TEST_SUPPORT_MULT_RUN_HH

#include <string>

#include "machine/perfect_machine.hh"
#include "mult/compiler.hh"
#include "runtime/runtime.hh"

namespace april::testutil
{

struct RunResult
{
    Word result = 0;            ///< main's return value (tagged)
    uint64_t cycles = 0;        ///< machine cycles to completion
    std::vector<Word> console;  ///< println output (before the result)
    uint64_t steals = 0;
    uint64_t spawns = 0;
    uint64_t blocks = 0;
    uint64_t resumes = 0;
};

/** Compile @p source and run it to completion on @p nodes processors. */
inline RunResult
runMult(const std::string &source, mult::CompileOptions copts = {},
        uint32_t nodes = 1, uint64_t max_cycles = 200'000'000,
        uint32_t words_per_node = 1u << 20, uint32_t num_frames = 4)
{
    rt::RuntimeOptions ropts;
    ropts.encore = copts.softwareChecks;

    Assembler as;
    rt::Runtime runtime(ropts);
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(source);
    Program prog = as.finish();

    PerfectMachineParams mp;
    mp.numNodes = nodes;
    mp.wordsPerNode = words_per_node;
    mp.proc.numFrames = num_frames;
    PerfectMachine machine(mp, &prog, runtime);
    machine.run(max_cycles);
    if (!machine.halted()) {
        panic("Mul-T program did not finish within ", max_cycles,
              " cycles (node0 pc=", machine.proc(0).pc(), " ",
              prog.symbolAt(machine.proc(0).pc()), ")");
    }

    RunResult r;
    r.cycles = machine.cycle();
    r.console = machine.console();
    if (r.console.empty())
        panic("no console output from boot");
    r.result = r.console.back();        // rt$boot emits main's value last
    r.console.pop_back();
    r.steals = machine.runtimeCounter(rt::nb::statSteals);
    r.spawns = machine.runtimeCounter(rt::nb::statSpawns);
    r.blocks = machine.runtimeCounter(rt::nb::statBlocks);
    r.resumes = machine.runtimeCounter(rt::nb::statResumes);
    return r;
}

} // namespace april::testutil

#endif // APRIL_TESTS_TEST_SUPPORT_MULT_RUN_HH

/** @file Shared fixture utilities for processor-level tests. */

#ifndef APRIL_TESTS_TEST_SUPPORT_PROC_RIG_HH
#define APRIL_TESTS_TEST_SUPPORT_PROC_RIG_HH

#include <memory>

#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"

namespace april::testutil
{

/** A single APRIL core on perfect memory, ready to run a Program. */
struct Rig
{
    explicit Rig(Program prog_, ProcParams params = {},
                 uint32_t mem_words = 1u << 16)
        : prog(std::move(prog_)),
          mem({.numNodes = 1, .wordsPerNode = mem_words}),
          port(&mem), io(),
          proc(params, &prog, &port, &io)
    {
        proc.reset(prog.hasSymbol("main") ? prog.entry("main") : 0);
    }

    /** Run to completion; panic if the program does not halt. */
    uint64_t
    run(uint64_t max_cycles = 1'000'000)
    {
        uint64_t used = proc.run(max_cycles);
        if (!proc.halted())
            panic("test program did not halt within ", max_cycles,
                  " cycles (pc=", proc.pc(), " ",
                  prog.symbolAt(proc.pc()), ")");
        return used;
    }

    Program prog;
    SharedMemory mem;
    PerfectMemPort port;
    SimpleIoPort io;
    Processor proc;
};

} // namespace april::testutil

#endif // APRIL_TESTS_TEST_SUPPORT_PROC_RIG_HH

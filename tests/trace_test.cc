/**
 * @file
 * The tracing subsystem: debug-flag plumbing, the event recorder's
 * capacity behavior, Chrome-trace-event export schema (valid JSON,
 * per-track monotonic timestamps, metadata tracks), the differential
 * guarantee that the recorded stream is byte-identical with
 * cycle-skipping on and off, and the driver's statsJson/traceJson
 * surfaces.
 */

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

#include "common/debug.hh"
#include "common/trace.hh"
#include "machine/alewife_machine.hh"
#include "machine/driver.hh"
#include "workloads/workloads.hh"

#include "json_test_util.hh"
#include "test_support/machine_workloads.hh"

namespace april
{
namespace
{

using testutil::Json;
using testutil::parseJson;

// ---------------------------------------------------------------------
// Debug flags
// ---------------------------------------------------------------------

TEST(DebugFlags, SetFlagsParsesCommaList)
{
    debug::setAllFlags(false);
    debug::setFlags("Ctx,Net");
    EXPECT_TRUE(debug::enabled(debug::Flag::Ctx));
    EXPECT_TRUE(debug::enabled(debug::Flag::Net));
    EXPECT_FALSE(debug::enabled(debug::Flag::Cache));
    debug::setAllFlags(false);
    EXPECT_FALSE(debug::enabled(debug::Flag::Ctx));
}

TEST(DebugFlags, AllEnablesEverything)
{
    debug::setFlags("All");
    for (size_t f = 0; f < size_t(debug::Flag::NumFlags); ++f)
        EXPECT_TRUE(debug::enabled(debug::Flag(f)));
    debug::setAllFlags(false);
}

TEST(DebugFlags, UnknownFlagIsFatal)
{
    EXPECT_THROW(debug::setFlags("Bogus"), FatalError);
}

// ---------------------------------------------------------------------
// Recorder basics
// ---------------------------------------------------------------------

TEST(TraceRecorder, CapacityDropsDeterministically)
{
    trace::RecorderConfig rc;
    rc.capacity = 4;
    trace::Recorder rec(rc);
    for (uint32_t i = 0; i < 6; ++i)
        rec.record({.cycle = i, .kind = trace::EventKind::NetSend});
    EXPECT_EQ(rec.events().size(), 4u);
    EXPECT_EQ(rec.dropped(), 2u);
}

/** Track key: instants share the node's thread; async frame slices
 *  form one track per (pid, cat, id). */
std::string
trackKey(const Json &ev)
{
    std::string key = "pid=" + std::to_string(ev.at("pid").number);
    if (ev.has("id")) {
        key += " cat=" + ev.at("cat").str +
               " id=" + std::to_string(ev.at("id").number);
    } else {
        key += " tid=" + std::to_string(ev.at("tid").number);
    }
    return key;
}

/** Schema assertions every exported trace must satisfy. */
void
checkChromeTraceSchema(const std::string &text)
{
    Json root = parseJson(text);
    ASSERT_TRUE(root.isObject());
    const Json &events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    std::map<std::string, double> lastTs;
    std::map<std::string, int> asyncDepth;
    for (const Json &ev : events.array) {
        ASSERT_TRUE(ev.isObject());
        EXPECT_TRUE(ev.has("name"));
        EXPECT_TRUE(ev.has("ph"));
        EXPECT_TRUE(ev.has("ts"));
        EXPECT_TRUE(ev.has("pid"));
        const std::string &ph = ev.at("ph").str;
        if (ph == "M")
            continue;
        std::string key = trackKey(ev);
        auto it = lastTs.find(key);
        if (it != lastTs.end()) {
            EXPECT_GE(ev.at("ts").number, it->second)
                << "timestamps must be non-decreasing on track " << key;
        }
        lastTs[key] = ev.at("ts").number;
        if (ph == "b") {
            EXPECT_EQ(++asyncDepth[key], 1) << "frame slices must not "
                                               "nest on track " << key;
        } else if (ph == "e") {
            EXPECT_EQ(--asyncDepth[key], 0) << "unbalanced frame slice "
                                               "on track " << key;
        }
    }
    for (const auto &[key, depth] : asyncDepth)
        EXPECT_EQ(depth, 0) << "unclosed frame slice on track " << key;
}

TEST(TraceRecorder, ChromeExportSchemaAndNames)
{
    trace::RecorderConfig rc;
    rc.numNodes = 2;
    rc.framesPerNode = 4;
    rc.trapNames = {"RemoteMiss", "FeEmpty"};
    rc.cohStateNames = {"Uncached", "Shared", "Exclusive"};
    trace::Recorder rec(rc);

    using trace::EventKind;
    rec.record({.cycle = 5, .node = 0, .kind = EventKind::Trap,
                .a = 1, .arg = 0x40});
    rec.record({.cycle = 6, .node = 0, .kind = EventKind::CtxSwitch,
                .a = 0, .b = 2});
    rec.record({.cycle = 7, .node = 1, .kind = EventKind::Coherence,
                .a = 1, .b = 2, .arg = 96, .arg2 = 0});
    rec.record({.cycle = 8, .node = 1, .kind = EventKind::NetSend,
                .arg = 0, .arg2 = 3});
    rec.record({.cycle = 9, .node = 0, .kind = EventKind::CtxSwitch,
                .a = 2, .b = 0});

    std::ostringstream os;
    rec.writeChromeTrace(os);
    std::string text = os.str();
    checkChromeTraceSchema(text);

    // Name tables flow through to the rendered events.
    EXPECT_NE(text.find("\"FeEmpty\""), std::string::npos);
    EXPECT_NE(text.find("Shared->Exclusive"), std::string::npos);
    EXPECT_NE(text.find("switch f0->f2"), std::string::npos);
    // Both nodes got a process-name metadata record.
    EXPECT_NE(text.find("\"node0\""), std::string::npos);
    EXPECT_NE(text.find("\"node1\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Differential: the event stream is identical with skipping on/off
// ---------------------------------------------------------------------

struct TracedOut
{
    testutil::MachineOut out;
    std::vector<trace::Event> events;
    std::string traceJson;
};

TracedOut
runTracedStallStress(bool skip)
{
    Program prog = testutil::buildStallStress(4);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.cycleSkip = skip;
    p.traceEvents = true;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &prog);
    testutil::bootStallStress(m, prog);
    m.run(20'000'000);

    TracedOut t;
    t.out = testutil::finishMachine(m);
    t.events = m.traceRecorder()->events();
    std::ostringstream os;
    m.writeTrace(os);
    t.traceJson = os.str();
    return t;
}

TEST(TraceDifferential, StallStressStreamIdenticalWithSkipOnOff)
{
    TracedOut on = runTracedStallStress(true);
    TracedOut off = runTracedStallStress(false);
    ASSERT_TRUE(on.out.halted);
    ASSERT_TRUE(off.out.halted);
    ASSERT_FALSE(on.events.empty());

    // The recorded stream and its serialization are byte-identical:
    // cycle-skipping may only jump windows proven event-free.
    EXPECT_TRUE(on.events == off.events);
    EXPECT_EQ(on.traceJson, off.traceJson);
    EXPECT_EQ(on.out.cycles, off.out.cycles);

    // The workload's non-trapping accesses exercise the coherence and
    // network families (misses MHOLD rather than trap).
    bool saw[8] = {};
    for (const trace::Event &e : on.events)
        saw[size_t(e.kind)] = true;
    EXPECT_TRUE(saw[size_t(trace::EventKind::Coherence)]);
    EXPECT_TRUE(saw[size_t(trace::EventKind::NetSend)]);
    EXPECT_TRUE(saw[size_t(trace::EventKind::NetDeliver)]);

    // And the real machine's export passes the schema check too.
    checkChromeTraceSchema(on.traceJson);
}

TracedOut
runTracedEagerFib(bool skip)
{
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Eager;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(9));
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 20;
    p.cycleSkip = skip;
    p.traceEvents = true;
    p.controller.cache = {.lineWords = 4, .numLines = 512, .assoc = 4};
    AlewifeMachine m(p, &prog);
    m.run(80'000'000);

    TracedOut t;
    t.out = testutil::finishMachine(m);
    t.events = m.traceRecorder()->events();
    std::ostringstream os;
    m.writeTrace(os);
    t.traceJson = os.str();
    return t;
}

TEST(TraceDifferential, EagerFibStreamIdenticalWithSkipOnOff)
{
    TracedOut on = runTracedEagerFib(true);
    TracedOut off = runTracedEagerFib(false);
    ASSERT_TRUE(on.out.halted);
    ASSERT_TRUE(off.out.halted);

    EXPECT_TRUE(on.events == off.events);
    EXPECT_EQ(on.traceJson, off.traceJson);
    EXPECT_EQ(on.out.cycles, off.out.cycles);

    // The runtime's trapping accesses and trap handlers add the
    // processor-side families the stall-stress workload cannot reach.
    bool saw[8] = {};
    for (const trace::Event &e : on.events)
        saw[size_t(e.kind)] = true;
    EXPECT_TRUE(saw[size_t(trace::EventKind::CtxSwitch)]);
    EXPECT_TRUE(saw[size_t(trace::EventKind::Trap)]);
    EXPECT_TRUE(saw[size_t(trace::EventKind::Coherence)]);
    EXPECT_TRUE(saw[size_t(trace::EventKind::NetSend)]);

    checkChromeTraceSchema(on.traceJson);
}

TEST(TraceDifferential, UntracedRunHasNoRecorder)
{
    Program prog = testutil::buildStallStress(4);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    AlewifeMachine m(p, &prog);
    EXPECT_EQ(m.traceRecorder(), nullptr);
    std::ostringstream os;
    m.writeTrace(os);
    EXPECT_TRUE(os.str().empty());
}

// ---------------------------------------------------------------------
// Overflow warning: once per machine run, never per event
// ---------------------------------------------------------------------

TEST(TraceOverflow, DroppedWarningPrintsOncePerMachine)
{
    Program prog = testutil::buildStallStress(4);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.traceEvents = true;
    p.traceCapacity = 8;        // guaranteed overflow
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &prog);
    testutil::bootStallStress(m, prog);

    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());
    m.run(1'000'000);
    m.run(1'000'000);           // a second run must not warn again
    std::cerr.rdbuf(old);

    ASSERT_GT(m.traceRecorder()->dropped(), 0u);
    std::string text = captured.str();
    size_t count = 0;
    for (size_t at = text.find("trace lane overflow");
         at != std::string::npos;
         at = text.find("trace lane overflow", at + 1)) {
        ++count;
    }
    EXPECT_EQ(count, 1u)
        << "overflow warning must be rate-limited to once per machine"
        << " run, got:\n" << text;
}

// ---------------------------------------------------------------------
// Driver surfaces: statsJson / traceJson
// ---------------------------------------------------------------------

TEST(DriverJson, StatsJsonIsValidAndHierarchical)
{
    DriverOptions opts =
        DriverOptions::april(mult::CompileOptions::FutureMode::Eager, 2);
    DriverResult r = runMultProgram(workloads::fibSource(8), opts);

    Json stats = parseJson(r.statsJson);
    EXPECT_EQ(stats.at("name").str, "machine");
    const Json &groups = stats.at("groups");
    ASSERT_TRUE(groups.has("proc0"));
    ASSERT_TRUE(groups.has("proc1"));
    const Json &cycles = groups.at("proc0").at("stats").at("cycles");
    EXPECT_EQ(cycles.at("type").str, "scalar");
    EXPECT_GT(cycles.at("value").number, 0.0);

    EXPECT_TRUE(r.traceJson.empty()) << "tracing was not requested";
}

TEST(DriverJson, TraceJsonParsesAndPassesSchema)
{
    DriverOptions opts =
        DriverOptions::april(mult::CompileOptions::FutureMode::Eager, 2);
    opts.traceEvents = true;
    DriverResult r = runMultProgram(workloads::fibSource(8), opts);
    ASSERT_FALSE(r.traceJson.empty());
    checkChromeTraceSchema(r.traceJson);
    // Perfect memory: context switches and traps show up, no network.
    EXPECT_NE(r.traceJson.find("\"cat\":\"ctx\""), std::string::npos);
    EXPECT_EQ(r.traceJson.find("\"cat\":\"net\""), std::string::npos);
}

} // namespace
} // namespace april

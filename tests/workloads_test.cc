/**
 * @file
 * The four Table 3 workloads validated against native C++ oracles in
 * every system configuration (T seq / APRIL eager / APRIL lazy /
 * Encore) and at several processor counts.
 */

#include <gtest/gtest.h>

#include "test_support/mult_run.hh"
#include "workloads/workloads.hh"

namespace april
{
namespace
{

using testutil::runMult;
using tagged::fixnum;
using FM = mult::CompileOptions::FutureMode;

workloads::SuiteSizes
smallSizes()
{
    workloads::SuiteSizes s;
    s.fibN = 11;
    s.factorLo = 500;
    s.factorHi = 540;
    s.queensN = 6;
    s.speechLayers = 6;
    s.speechWidth = 6;
    return s;
}

struct Config
{
    const char *name;
    FM futures;
    bool software;
    uint32_t nodes;
};

class WorkloadConfigTest : public ::testing::TestWithParam<Config>
{
};

TEST_P(WorkloadConfigTest, FibMatchesOracle)
{
    auto s = smallSizes();
    auto b = workloads::makeFib(s);
    auto cfg = GetParam();
    mult::CompileOptions c;
    c.futures = cfg.futures;
    c.softwareChecks = cfg.software;
    auto r = runMult(b.source, c, cfg.nodes);
    EXPECT_EQ(tagged::toInt(r.result), b.expected);
}

TEST_P(WorkloadConfigTest, FactorMatchesOracle)
{
    auto s = smallSizes();
    auto b = workloads::makeFactor(s);
    auto cfg = GetParam();
    mult::CompileOptions c;
    c.futures = cfg.futures;
    c.softwareChecks = cfg.software;
    auto r = runMult(b.source, c, cfg.nodes);
    EXPECT_EQ(tagged::toInt(r.result), b.expected);
}

TEST_P(WorkloadConfigTest, QueensMatchesOracle)
{
    auto s = smallSizes();
    auto b = workloads::makeQueens(s);
    auto cfg = GetParam();
    mult::CompileOptions c;
    c.futures = cfg.futures;
    c.softwareChecks = cfg.software;
    auto r = runMult(b.source, c, cfg.nodes);
    EXPECT_EQ(tagged::toInt(r.result), b.expected);
}

TEST_P(WorkloadConfigTest, SpeechMatchesOracle)
{
    auto s = smallSizes();
    auto b = workloads::makeSpeech(s);
    auto cfg = GetParam();
    mult::CompileOptions c;
    c.futures = cfg.futures;
    c.softwareChecks = cfg.software;
    auto r = runMult(b.source, c, cfg.nodes);
    EXPECT_EQ(tagged::toInt(r.result), b.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, WorkloadConfigTest,
    ::testing::Values(
        Config{"t_seq", FM::Erase, false, 1},
        Config{"mult_seq_encore", FM::Erase, true, 1},
        Config{"april_eager_1", FM::Eager, false, 1},
        Config{"april_eager_4", FM::Eager, false, 4},
        Config{"april_lazy_1", FM::Lazy, false, 1},
        Config{"april_lazy_4", FM::Lazy, false, 4},
        Config{"encore_eager_2", FM::Eager, true, 2}),
    [](const ::testing::TestParamInfo<Config> &info) {
        return info.param.name;
    });

TEST(WorkloadOracles, KnownValues)
{
    EXPECT_EQ(workloads::fibExpected(12), 144);
    EXPECT_EQ(workloads::fibExpected(20), 6765);
    EXPECT_EQ(workloads::queensExpected(6), 4);
    EXPECT_EQ(workloads::queensExpected(8), 92);
    // Largest prime factors: 10 -> 5, 11 -> 11, 12 -> 3: sum 19.
    EXPECT_EQ(workloads::factorExpected(10, 12), 19);
    // Speech: monotone in layers (weights are non-negative).
    EXPECT_GT(workloads::speechExpected(8, 6),
              workloads::speechExpected(4, 6));
}

TEST(WorkloadOracles, SpeedupOnFourProcessors)
{
    // Every workload must show parallel speedup with lazy futures —
    // Table 3's 4-processor column is ~0.3-0.5x the 1-processor one.
    auto s = smallSizes();
    for (auto b : {workloads::makeFib(s), workloads::makeFactor(s),
                   workloads::makeQueens(s), workloads::makeSpeech(s)}) {
        mult::CompileOptions c;
        c.futures = FM::Lazy;
        auto r1 = runMult(b.source, c, 1);
        auto r4 = runMult(b.source, c, 4);
        EXPECT_LT(double(r4.cycles), 0.8 * double(r1.cycles))
            << b.name << " lazy 4p vs 1p";
    }
}

} // namespace
} // namespace april

/**
 * @file
 * april-coh — run a workload on the full ALEWIFE machine with
 * coherence observability on and report what the protocol did.
 *
 * Modes:
 *
 *   april-coh [--workload=NAME[:ARGS]] [options]
 *       Run a Table 3 workload (fib[:n], factor[:lo:hi], queens[:n],
 *       speech[:layers:width]) on a 2x2 ALEWIFE machine, the
 *       hand-written coherent16[:iters] counter loop on a 4x4 one, or
 *       the wide[:nodes] wide-sharing workload on a square mesh of
 *       any size (--dir selects the directory scheme, the CI smoke
 *       runs wide:256 under the limited directory), with transaction
 *       tracing on, then print the coherence report:
 *       sharer-count distribution, per-transition directory counters,
 *       per-class network latency, hottest/widest lines, busiest node
 *       pairs and slowest transactions. Export options write the
 *       report or the raw span log as JSON.
 *
 *   april-coh --check FILE [--schema=SCHEMA.json]
 *       Validate a report JSON file against the checked-in schema
 *       (tools/april_coh_schema.json) plus the invalidation-balance
 *       invariant. Exit 1 on violation.
 *
 * With --verify, the run mode also checks span causality (every
 * fill's parent is its miss, invalidation acks balance) and exits 1
 * on any violation — the CI coherence gate.
 *
 * Exit codes: 0 ok, 1 check/verify violation, 2 usage or run failure.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.hh"
#include "common/logging.hh"
#include "machine/alewife_machine.hh"
#include "machine/coh_report.hh"
#include "mult/compiler.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

#include "cli_common.hh"

namespace
{

using april::json::Json;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: april-coh [--workload=NAME[:ARGS]] [options]\n"
        "       april-coh --check FILE [--schema=SCHEMA.json]\n"
        "\n"
        "workloads: fib[:n] factor[:lo:hi] queens[:n] "
        "speech[:layers:width] coherent16[:iters] wide[:nodes]\n"
        "options:\n"
        "  --threads=N        host worker threads (default 1; the\n"
        "                     report is bit-identical at any count)\n"
        "  --dir=SCHEME       directory scheme: fullmap (default) or\n"
        "                     limited (i-pointer + software spill)\n"
        "  --dir-pointers=N   hardware pointers i for --dir=limited\n"
        "                     (default 4)\n"
        "  --frames=N         task frames per processor (default 4)\n"
        "  --top=N            rows per top-N table (default 10)\n"
        "  --max-cycles=N     run budget (default 200000000)\n"
        "  --no-trace         census + telemetry only (no span log)\n"
        "  --verify           check span causality and invalidation\n"
        "                     balance; exit 1 on violation\n"
        "  --json=FILE        write the report JSON\n"
        "  --txns=FILE        write the raw transaction-span JSON\n"
        "  --perfetto=FILE    write the Chrome trace with transaction\n"
        "                     flow events stitched in\n");
    return 2;
}

// --- check mode ------------------------------------------------------

/** Balance invariant over a report: invAcked <= invSent and the ok
 *  bit agrees. */
void
checkBalance(const Json &report, std::vector<std::string> &errors)
{
    if (!report.has("balance"))
        return;
    const Json &b = report.at("balance");
    double sent = b.at("invSent").number;
    double acked = b.at("invAcked").number;
    if (acked > sent) {
        errors.push_back("/balance: invAcked " + std::to_string(acked) +
                         " exceeds invSent " + std::to_string(sent));
    }
    if (b.at("ok").number != (acked <= sent ? 1 : 0))
        errors.push_back("/balance: ok bit disagrees with counts");
}

// --- run mode --------------------------------------------------------

struct RunOptions
{
    std::string workload = "fib:12";
    uint32_t threads = 1;
    uint32_t frames = 4;
    size_t top = 10;
    uint64_t maxCycles = 200'000'000;
    april::coh::DirScheme dirScheme = april::coh::DirScheme::FullMap;
    uint32_t dirPointers = 4;
    bool trace = true;
    bool verify = false;
    std::string jsonFile;
    std::string txnsFile;
    std::string perfettoFile;
};

int
runReport(const RunOptions &opt)
{
    using namespace april;

    std::vector<std::string> parts = cli::splitSpec(opt.workload);
    std::string name = parts.empty() ? "fib" : parts[0];
    auto arg = [&](size_t i, int fallback) {
        return cli::specArg(parts, i, fallback);
    };

    std::unique_ptr<AlewifeMachine> m;
    Program prog;
    bool raw = name == "coherent16" || name == "wide";
    workloads::CoherentLoop coh_loop;

    if (name == "wide") {
        uint32_t nodes = uint32_t(arg(1, 64));
        int radix = 0;
        while (uint32_t(radix) * uint32_t(radix) < nodes)
            ++radix;
        if (uint32_t(radix) * uint32_t(radix) != nodes || nodes < 2) {
            fatal("april-coh: wide:", nodes,
                  " is not a square mesh (>= 2 nodes)");
        }
        workloads::WideSharing w =
            workloads::buildWideSharing(nodes, 1u << 14);
        prog = std::move(w.prog);
        AlewifeParams p;
        p.network = {.dim = 2, .radix = radix};
        p.wordsPerNode = w.wordsPerNode;
        p.bootRuntime = false;
        p.controller.cache = {.lineWords = 4, .numLines = 64,
                              .assoc = 2};
        p.hostThreads = opt.threads;
        p.dirScheme = opt.dirScheme;
        p.dirPointers = opt.dirPointers;
        p.cohTrace = opt.trace;
        p.traceEvents = !opt.perfettoFile.empty();
        m = std::make_unique<AlewifeMachine>(p, &prog);
        for (uint32_t n = 0; n < m->numNodes(); ++n)
            workloads::bootCoherentNode(m->proc(n), prog);
    } else if (raw) {
        coh_loop = workloads::buildCoherentLoop(16, uint32_t(
            arg(1, 200)));
        prog = std::move(coh_loop.prog);
        AlewifeParams p;
        p.network = {.dim = 2, .radix = 4};          // 16 nodes
        p.wordsPerNode = 1u << 16;
        p.bootRuntime = false;
        p.controller.cache = {.lineWords = 4, .numLines = 64,
                              .assoc = 2};
        p.proc.numFrames = opt.frames;
        p.hostThreads = opt.threads;
        p.dirScheme = opt.dirScheme;
        p.dirPointers = opt.dirPointers;
        p.cohTrace = opt.trace;
        p.traceEvents = !opt.perfettoFile.empty();
        m = std::make_unique<AlewifeMachine>(p, &prog);
        for (uint32_t n = 0; n < m->numNodes(); ++n)
            workloads::bootCoherentNode(m->proc(n), prog);
        m->memory().write(coh_loop.count, tagged::fixnum(0));
    } else {
        namespace wl = april::workloads;
        std::string source;
        if (name == "fib")
            source = wl::fibSource(arg(1, 12));
        else if (name == "factor")
            source = wl::factorSource(arg(1, 1000), arg(2, 1040));
        else if (name == "queens")
            source = wl::queensSource(arg(1, 6));
        else if (name == "speech")
            source = wl::speechSource(arg(1, 8), arg(2, 12));
        else
            fatal("april-coh: unknown workload '", name,
                  "' (try fib, factor, queens, speech, coherent16)");
        Assembler as;
        rt::Runtime runtime;
        runtime.emit(as);
        mult::CompileOptions copts;
        copts.futures = mult::CompileOptions::FutureMode::Lazy;
        mult::Compiler compiler(as, copts);
        compiler.compileSource(source);
        prog = as.finish();
        AlewifeParams p;
        p.network = {.dim = 2, .radix = 2};          // 4 nodes
        p.controller.cache = {.lineWords = 4, .numLines = 4096,
                              .assoc = 4};           // Table 4: 64 KB
        p.proc.numFrames = opt.frames;
        p.hostThreads = opt.threads;
        p.dirScheme = opt.dirScheme;
        p.dirPointers = opt.dirPointers;
        p.cohTrace = opt.trace;
        p.traceEvents = !opt.perfettoFile.empty();
        m = std::make_unique<AlewifeMachine>(p, &prog);
    }

    m->run(opt.maxCycles);
    if (!m->halted()) {
        std::fprintf(stderr, "april-coh: %s did not halt in %llu "
                             "cycles\n",
                     opt.workload.c_str(),
                     (unsigned long long)opt.maxCycles);
        return 2;
    }
    // Raw workloads go fully silent after the halt, so drain the
    // in-flight coherence traffic: the invalidation balance must then
    // hold exactly. Runtime-booted workloads never quiesce (idle
    // workers spin forever) and are reported at the committed halt.
    bool drained = false;
    if (raw)
        drained = m->quiesce(1'000'000);

    CohReportOptions ropt;
    ropt.topLines = ropt.topSharers = ropt.topTxns = ropt.topPairs =
        opt.top;
    writeCohReportText(std::cout, *m, ropt);

    cli::writeReportFile("april-coh", opt.jsonFile,
                         [&](std::ostream &os) {
                             writeCohReportJson(os, *m, ropt);
                         });
    cli::writeReportFile("april-coh", opt.txnsFile,
                         [&](std::ostream &os) {
                             m->writeCohTrace(os);
                         });
    cli::writeReportFile("april-coh", opt.perfettoFile,
                         [&](std::ostream &os) {
                             m->writeTrace(os);
                         });

    if (opt.verify) {
        uint64_t inv_sent = 0;
        uint64_t inv_acked = 0;
        for (uint32_t n = 0; n < m->numNodes(); ++n) {
            inv_sent +=
                uint64_t(m->controller(n).statInvSent.value());
            inv_acked +=
                uint64_t(m->controller(n).statInvAcks.value());
        }
        bool balance_ok = drained ? inv_acked == inv_sent
                                  : inv_acked <= inv_sent;
        if (!balance_ok) {
            std::fprintf(stderr,
                         "april-coh: invalidation balance violated: "
                         "sent %llu, acked %llu%s\n",
                         (unsigned long long)inv_sent,
                         (unsigned long long)inv_acked,
                         drained ? " (drained)" : "");
            return 1;
        }
        if (coh::TxnTracer *t = m->txnTracer()) {
            std::string err = checkCohInvariants(*t);
            if (!err.empty()) {
                std::fprintf(stderr,
                             "april-coh: span causality violated: "
                             "%s\n",
                             err.c_str());
                return 1;
            }
        }
        std::printf("verify: ok (balance%s + span causality)\n",
                    drained ? ", drained" : "");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string mode;
    std::string schema_path = "../tools/april_coh_schema.json";
    RunOptions opt;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg == "--check")
            mode = arg;
        else if (arg.rfind("--workload=", 0) == 0)
            opt.workload = value("--workload=");
        else if (arg.rfind("--threads=", 0) == 0)
            opt.threads =
                uint32_t(std::atoi(value("--threads=").c_str()));
        else if (arg.rfind("--dir=", 0) == 0) {
            std::string s = value("--dir=");
            if (s == "fullmap")
                opt.dirScheme = april::coh::DirScheme::FullMap;
            else if (s == "limited")
                opt.dirScheme = april::coh::DirScheme::LimitedPtr;
            else
                return usage();
        } else if (arg.rfind("--dir-pointers=", 0) == 0)
            opt.dirPointers = uint32_t(
                std::atoi(value("--dir-pointers=").c_str()));
        else if (arg.rfind("--frames=", 0) == 0)
            opt.frames =
                uint32_t(std::atoi(value("--frames=").c_str()));
        else if (arg.rfind("--top=", 0) == 0)
            opt.top = size_t(std::atoi(value("--top=").c_str()));
        else if (arg.rfind("--max-cycles=", 0) == 0)
            opt.maxCycles = std::strtoull(
                value("--max-cycles=").c_str(), nullptr, 10);
        else if (arg == "--no-trace")
            opt.trace = false;
        else if (arg == "--verify")
            opt.verify = true;
        else if (arg.rfind("--json=", 0) == 0)
            opt.jsonFile = value("--json=");
        else if (arg.rfind("--txns=", 0) == 0)
            opt.txnsFile = value("--txns=");
        else if (arg.rfind("--perfetto=", 0) == 0)
            opt.perfettoFile = value("--perfetto=");
        else if (arg.rfind("--schema=", 0) == 0)
            schema_path = value("--schema=");
        else if (arg.rfind("--", 0) == 0)
            return usage();
        else
            positional.push_back(arg);
    }

    try {
        if (mode == "--check") {
            if (positional.size() != 1)
                return usage();
            return april::cli::checkReport("april-coh", positional[0],
                                           schema_path,
                                           "schema + balance",
                                           checkBalance);
        }
        if (!positional.empty())
            return usage();
        return runReport(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "april-coh: %s\n", e.what());
        return 2;
    }
}

/**
 * @file
 * april-lint: static analysis gate for APRIL programs.
 *
 * Two operating modes:
 *
 *   april-lint [--strict] FILE.april...
 *       Replay each fuzz-corpus entry (seed + drop list + digest),
 *       rebuild its program, and run the static check suite under the
 *       fuzz lint profile (fz$main entry with only r0 defined, fz$*
 *       handler roots, all vectors installed).
 *
 *   april-lint [--strict] --workloads
 *       Assemble the runtime + the four Table 3 Mul-T benchmarks and
 *       the hand-written fine-grain sync pipeline, and lint each image
 *       under the every-symbol-is-a-root profile; also lint the
 *       LimitLESS directory-handler image (coh$spill / coh$walk) under
 *       the protocol-handler profile, which additionally requires
 *       every handler to restore the frame pointer before RETT.
 *
 * Options:
 *   --strict   gate on Info findings too (default: Warning and up)
 *   --resign   corpus mode: tolerate a listing-digest mismatch and
 *              rewrite the entry with the regenerated digest/listing
 *              (for intentional generator changes; lint still runs)
 *
 * Exit status: 0 clean, 1 findings at or above the gate severity,
 * 2 file/parse errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/checks.hh"
#include "fuzz/generator.hh"
#include "mult/compiler.hh"
#include "runtime/runtime.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;

struct Gate
{
    analysis::Severity min = analysis::Severity::Warning;
    int exitCode = 0;

    /** Lint one program; print findings; fold into the exit code. */
    void
    check(const std::string &name, const Program &prog,
          const analysis::AnalysisOptions &opts)
    {
        analysis::AnalysisResult res = analysis::analyzeProgram(prog, opts);
        uint32_t gated = res.count(min);
        uint32_t info = uint32_t(res.findings.size()) - res.count(
            analysis::Severity::Warning);
        std::printf("%s: %u blocks, %u reachable instructions, "
                    "%u finding(s)%s\n",
                    name.c_str(), res.numBlocks, res.reachableInsts,
                    gated,
                    info && min != analysis::Severity::Info
                        ? (" (+" + std::to_string(info) + " info)").c_str()
                        : "");
        for (const analysis::Finding &f : res.findings) {
            if (f.sev < min)
                continue;
            std::printf("  pc %u (%s): %s [%s] %s\n", f.pc,
                        prog.symbolAt(f.pc).c_str(),
                        analysis::severityName(f.sev),
                        analysis::checkName(f.kind), f.message.c_str());
        }
        if (gated)
            exitCode = std::max(exitCode, 1);
    }
};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

int
lintCorpusFile(const std::string &path, Gate &gate, bool resign)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "%s: cannot read\n", path.c_str());
        return 2;
    }
    fuzz::FuzzCase c;
    std::string err = fuzz::parseCase(text, c);
    bool digestDrift = err.find("digest mismatch") != std::string::npos;
    if (!err.empty() && !(resign && digestDrift)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return 2;
    }
    if (resign && digestDrift) {
        std::ofstream outf(path, std::ios::binary | std::ios::trunc);
        if (!outf) {
            std::fprintf(stderr, "%s: cannot rewrite\n", path.c_str());
            return 2;
        }
        outf << fuzz::serializeCase(c);
        std::printf("%s: re-signed (generator changed)\n", path.c_str());
    }
    Program prog = fuzz::buildProgram(c);
    gate.check(path, prog, fuzz::lintOptions(prog));
    return 0;
}

/** Lint profile for the LimitLESS directory-handler image: the only
 *  legal entries are the trap-vector symbols, each held to the
 *  protocol-handler frame discipline (internal labels are NOT roots —
 *  nothing enters a handler mid-body). */
analysis::AnalysisOptions
dirHandlerOptions(const workloads::DirHandlers &dh)
{
    analysis::AnalysisOptions opts;
    for (const std::string &name : dh.handlers) {
        analysis::AnalysisOptions::Root r;
        r.pc = dh.prog.entry(name);
        r.name = name;
        r.allRegsDefined = true;
        r.handler = true;
        r.protocolHandler = true;
        opts.roots.push_back(std::move(r));
    }
    opts.installAllHandlers();
    return opts;
}

Program
buildMult(const std::string &source)
{
    mult::CompileOptions copts;
    rt::RuntimeOptions ropts;
    ropts.encore = copts.softwareChecks;
    Assembler as;
    rt::Runtime runtime(ropts);
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(source);
    return as.finish();
}

int
lintWorkloads(Gate &gate)
{
    workloads::SuiteSizes sizes;
    const workloads::Benchmark benches[] = {
        workloads::makeFib(sizes),
        workloads::makeFactor(sizes),
        workloads::makeQueens(sizes),
        workloads::makeSpeech(sizes),
    };
    for (const workloads::Benchmark &b : benches) {
        Program prog = buildMult(b.source);
        gate.check("workload:" + b.name, prog,
                   analysis::allSymbolRoots(prog));
    }
    workloads::FineGrainSync fg = workloads::buildFineGrainSync();
    gate.check("workload:fine_grain_sync", fg.prog,
               analysis::allSymbolRoots(fg.prog));
    workloads::DirHandlers dh = workloads::buildDirHandlers();
    gate.check("workload:dir_handlers", dh.prog,
               dirHandlerOptions(dh));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Gate gate;
    bool resign = false;
    bool doWorkloads = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--strict"))
            gate.min = analysis::Severity::Info;
        else if (!std::strcmp(argv[i], "--resign"))
            resign = true;
        else if (!std::strcmp(argv[i], "--workloads"))
            doWorkloads = true;
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            std::printf("usage: april-lint [--strict] [--resign] "
                        "FILE.april...\n"
                        "       april-lint [--strict] --workloads\n");
            return 0;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (!doWorkloads && files.empty()) {
        std::fprintf(stderr,
                     "april-lint: no inputs (see --help)\n");
        return 2;
    }

    if (doWorkloads)
        lintWorkloads(gate);
    for (const std::string &f : files) {
        int rc = lintCorpusFile(f, gate, resign);
        if (rc)
            gate.exitCode = std::max(gate.exitCode, rc);
    }
    return gate.exitCode;
}

/**
 * @file
 * april-mc — exhaustive model checker for the directory coherence
 * protocol (DESIGN.md §7.9).
 *
 * Modes:
 *
 *   april-mc [--scheme=fullmap|limited] [--pointers=N] [--nodes=N]
 *       Exhaustively explore the protocol spec (src/mc/spec.cc) on
 *       one line and N nodes with bounded FIFO channels and
 *       cross-channel reordering, checking SWMR, data value (reads
 *       return the last write), invalidation/ack and fence balance,
 *       deadlock freedom and bounded liveness (every state can reach
 *       quiescence). Prints state/transition counts and per-rule
 *       coverage; a violation prints its shortest counterexample as
 *       a message-sequence trace in april-coh span vocabulary.
 *
 *   april-mc --mutate=RULE [same options]
 *       The checker checks itself: plant a protocol bug by rotating
 *       rule RULE's resulting directory state and assert the
 *       explorer catches it. Exit 0 when the planted bug is caught,
 *       1 when it survives — the CI mutation gate.
 *
 *   april-mc --replay=FILE
 *       Validate a recorded coherence-transaction trace (april-coh
 *       --export-trace / AlewifeMachine::writeCohTrace JSON) against
 *       the protocol's span shape: leg ordering, exactly one
 *       Issue/ReplySend/Fill per complete transaction, Inv/InvAck and
 *       WbReqSend/WbRecv balance, summary-tally agreement. Refuses
 *       traces that dropped legs at the capacity cap.
 *
 *   april-mc --list-rules
 *       Print the spec's home-directory rule table.
 *
 * Exit codes: 0 ok, 1 violation (or planted mutation missed),
 * 2 usage/input error.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "mc/explore.hh"
#include "mc/replay.hh"
#include "mc/spec.hh"

#include "cli_common.hh"

namespace
{

using april::cli::parseU32;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: april-mc [options]\n"
        "       april-mc --replay=FILE\n"
        "       april-mc --list-rules\n"
        "\n"
        "options:\n"
        "  --scheme=S         directory scheme: fullmap (default) or\n"
        "                     limited (i-pointer + software spill)\n"
        "  --pointers=N       hardware pointers i for --scheme=limited\n"
        "                     (default 4)\n"
        "  --nodes=N          nodes in the abstract machine, home is\n"
        "                     node 0 (2..4, default 3)\n"
        "  --max-states=N     exploration cap (default 2000000;\n"
        "                     hitting it fails the run)\n"
        "  --max-fence=N      FLUSH fence-counter bound (default 2)\n"
        "  --no-symmetry      disable non-home node canonicalization\n"
        "  --no-liveness      skip the EF-quiescence pass\n"
        "  --mutate=RULE      rotate rule RULE's resulting state and\n"
        "                     assert the checker catches it\n"
        "  --trace            print the counterexample trace (default\n"
        "                     on; --no-trace for counts only)\n"
        "  --quiet            summary line only\n");
    return 2;
}

void
printRules()
{
    std::printf("home-directory rules (%zu):\n", april::mc::kNumDirRules);
    for (const auto &r : april::mc::dirRules())
        std::printf("  %s\n", april::mc::describeDirRule(r.id).c_str());
}

void
printCoverage(const april::mc::ExploreResult &res)
{
    const auto &dr = april::mc::dirRules();
    std::printf("rule coverage (dir):\n");
    for (size_t i = 0; i < april::mc::kNumDirRules; ++i) {
        std::printf("  R%-2zu %-18s %10llu\n", i, dr[i].name,
                    (unsigned long long)res.dirRuleFires[i]);
    }
    std::printf("rule coverage (cache):\n");
    for (size_t i = 0; i < april::mc::kNumCacheRules; ++i) {
        std::printf("  C%-2zu %-18s %10llu\n", i,
                    april::mc::cacheRules()[i].name,
                    (unsigned long long)res.cacheRuleFires[i]);
    }
}

int
runReplay(const std::string &path)
{
    std::string text;
    try {
        text = april::cli::readFile("april-mc", path);
    } catch (const std::exception &) {
        return 2;
    }
    april::mc::ReplayResult r = april::mc::replayCohTrace(text);
    std::printf("replay %s: %s\n", path.c_str(),
                april::mc::summarizeReplay(r).c_str());
    for (const std::string &e : r.errors)
        std::printf("  %s\n", e.c_str());
    return r.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    april::mc::ExploreParams p;
    int mutate = -1;
    bool show_trace = true;
    bool quiet = false;
    std::string replay_path;
    bool list_rules = false;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
        };
        if (const char *v = val("--scheme=")) {
            if (std::strcmp(v, "fullmap") == 0) {
                p.spec.scheme = april::coh::DirScheme::FullMap;
            } else if (std::strcmp(v, "limited") == 0) {
                p.spec.scheme = april::coh::DirScheme::LimitedPtr;
            } else {
                std::fprintf(stderr, "april-mc: unknown scheme %s\n", v);
                return usage();
            }
        } else if (const char *v = val("--pointers=")) {
            if (!parseU32(v, p.spec.dirPointers))
                return usage();
        } else if (const char *v = val("--nodes=")) {
            if (!parseU32(v, p.nodes) || p.nodes < 2 ||
                p.nodes > april::mc::kMaxNodes) {
                std::fprintf(stderr, "april-mc: --nodes must be 2..%u\n",
                             april::mc::kMaxNodes);
                return 2;
            }
        } else if (const char *v = val("--max-states=")) {
            uint32_t n;
            if (!parseU32(v, n))
                return usage();
            p.maxStates = n;
        } else if (const char *v = val("--max-fence=")) {
            uint32_t n;
            if (!parseU32(v, n) || n > 255)
                return usage();
            p.maxFence = uint8_t(n);
        } else if (std::strcmp(a, "--no-symmetry") == 0) {
            p.symmetry = false;
        } else if (std::strcmp(a, "--no-liveness") == 0) {
            p.checkLiveness = false;
        } else if (const char *v = val("--mutate=")) {
            uint32_t n;
            if (!parseU32(v, n) || n >= april::mc::kNumDirRules) {
                std::fprintf(stderr,
                             "april-mc: --mutate takes a rule id 0..%zu\n",
                             april::mc::kNumDirRules - 1);
                return 2;
            }
            mutate = int(n);
        } else if (const char *v = val("--replay=")) {
            replay_path = v;
        } else if (std::strcmp(a, "--list-rules") == 0) {
            list_rules = true;
        } else if (std::strcmp(a, "--trace") == 0) {
            show_trace = true;
        } else if (std::strcmp(a, "--no-trace") == 0) {
            show_trace = false;
        } else if (std::strcmp(a, "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "april-mc: unknown option %s\n", a);
            return usage();
        }
    }

    if (list_rules) {
        printRules();
        return 0;
    }
    if (!replay_path.empty())
        return runReplay(replay_path);

    p.spec.mutateRule = mutate;
    april::mc::ExploreResult res = april::mc::explore(p);
    std::printf("%s\n", april::mc::summarize(p, res).c_str());
    if (!quiet && res.violations.empty())
        printCoverage(res);
    for (const april::mc::Violation &v : res.violations) {
        std::printf("violation: %s: %s\n", v.kind.c_str(),
                    v.detail.c_str());
        if (show_trace) {
            for (const std::string &line : v.trace)
                std::printf("  %s\n", line.c_str());
        }
    }

    if (mutate >= 0) {
        // The mutation gate inverts the verdict: the planted bug must
        // be caught.
        if (!res.violations.empty()) {
            std::printf("mutation gate: planted bug in %s caught\n",
                        april::mc::describeDirRule(uint8_t(mutate))
                            .c_str());
            return 0;
        }
        std::printf("mutation gate: planted bug in %s NOT caught\n",
                    april::mc::describeDirRule(uint8_t(mutate)).c_str());
        return 1;
    }
    return res.ok() ? 0 : 1;
}

/**
 * @file
 * april-prof — run a workload image under the cycle-accounting
 * profiler and report where every cycle went.
 *
 * Modes:
 *
 *   april-prof [--workload=NAME[:ARGS]] [options]
 *       Run a Table 3 workload (fib[:n], factor[:lo:hi], queens[:n],
 *       speech[:layers:width]) on a 2x2 ALEWIFE machine (or a perfect
 *       shared-memory machine with --perfect) with PC sampling and
 *       interval stats on, then print a cycle-breakdown + top-hotspot
 *       report. Export options write the same run as profile JSON,
 *       folded stacks, Perfetto counter tracks, or a CSV time series.
 *
 *   april-prof --diff A.json B.json
 *       Compare two profile JSON files: per-node bucket deltas,
 *       utilization deltas and hotspot movement.
 *
 *   april-prof --check FILE [--schema=SCHEMA.json]
 *       Validate a profile JSON file against the checked-in schema
 *       (tools/april_prof_schema.json) and the accounting invariant
 *       sum(buckets) == cycles for every node. Exit 1 on violation.
 *
 * Exit codes: 0 ok, 1 check/diff violation, 2 usage or run failure.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.hh"
#include "common/logging.hh"
#include "machine/alewife_machine.hh"
#include "machine/perfect_machine.hh"
#include "mult/compiler.hh"
#include "profile/report.hh"
#include "workloads/workloads.hh"

#include "cli_common.hh"

namespace
{

using april::json::Json;
using april::json::parseJson;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: april-prof [--workload=NAME[:ARGS]] [options]\n"
        "       april-prof --diff A.json B.json\n"
        "       april-prof --check FILE [--schema=SCHEMA.json]\n"
        "\n"
        "workloads: fib[:n] factor[:lo:hi] queens[:n] "
        "speech[:layers:width]\n"
        "options:\n"
        "  --perfect          perfect shared memory instead of ALEWIFE\n"
        "  --nodes=N          node count with --perfect (default 4)\n"
        "  --threads=N        host worker threads for the ALEWIFE run\n"
        "                     (default 1; the profile is bit-identical\n"
        "                     at any thread count)\n"
        "  --frames=N         task frames per processor (default 4)\n"
        "  --period=N         PC sample period (default 64)\n"
        "  --interval=N       stats snapshot period (default 4096)\n"
        "  --top=N            hotspots per node in the report "
        "(default 8)\n"
        "  --max-cycles=N     run budget (default 200000000)\n"
        "  --json=FILE        write profile JSON\n"
        "  --folded=FILE      write folded-stack hotspot lines\n"
        "  --counters=FILE    write Perfetto counter tracks\n"
        "  --series=FILE      write the stats time series as CSV\n");
    return 2;
}

std::string
readFile(const std::string &path)
{
    return april::cli::readFile("april-prof", path);
}

/** Accounting invariant: per-node bucket sums equal cycle counts. */
void
checkInvariants(const Json &profile, std::vector<std::string> &errors)
{
    if (!profile.has("nodes"))
        return;
    const auto &nodes = profile.at("nodes").array;
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Json &node = nodes[i];
        if (!node.has("buckets") || !node.has("cycles"))
            continue;
        double sum = 0;
        for (const auto &[name, v] : node.at("buckets").object)
            sum += v.number;
        if (sum != node.at("cycles").number) {
            errors.push_back("/nodes/" + std::to_string(i) +
                             ": bucket sum " + std::to_string(sum) +
                             " != cycles " +
                             std::to_string(node.at("cycles").number));
        }
        if (!node.has("frames"))
            continue;
        double frame_sum = 0;
        for (const Json &row : node.at("frames").array)
            for (const Json &v : row.array)
                frame_sum += v.number;
        if (frame_sum != node.at("cycles").number) {
            errors.push_back("/nodes/" + std::to_string(i) +
                             ": frame matrix sum " +
                             std::to_string(frame_sum) + " != cycles");
        }
    }
}

// --- diff mode -------------------------------------------------------

int
runDiff(const std::string &file_a, const std::string &file_b)
{
    Json a = parseJson(readFile(file_a));
    Json b = parseJson(readFile(file_b));
    std::printf("diff %s -> %s\n", file_a.c_str(), file_b.c_str());
    std::printf("total cycles: %.0f -> %.0f (%+.1f%%)\n",
                a.at("totalCycles").number, b.at("totalCycles").number,
                a.at("totalCycles").number
                    ? 100.0 * (b.at("totalCycles").number -
                               a.at("totalCycles").number)
                          / a.at("totalCycles").number
                    : 0.0);
    const auto &nodes_a = a.at("nodes").array;
    const auto &nodes_b = b.at("nodes").array;
    size_t n = std::min(nodes_a.size(), nodes_b.size());
    if (nodes_a.size() != nodes_b.size()) {
        std::printf("node count differs: %zu vs %zu (comparing first "
                    "%zu)\n",
                    nodes_a.size(), nodes_b.size(), n);
    }
    for (size_t i = 0; i < n; ++i) {
        const Json &na = nodes_a[i];
        const Json &nb = nodes_b[i];
        std::printf("node %.0f: utilization %.3f -> %.3f\n",
                    na.at("node").number, na.at("utilization").number,
                    nb.at("utilization").number);
        for (const auto &[bucket, va] : na.at("buckets").object) {
            double vb = nb.at("buckets").has(bucket)
                ? nb.at("buckets").at(bucket).number
                : 0.0;
            if (va.number == vb)
                continue;
            std::printf("  %-10s %12.0f -> %12.0f (%+.0f)\n",
                        bucket.c_str(), va.number, vb, vb - va.number);
        }
    }
    return 0;
}

// --- run mode --------------------------------------------------------

struct Workload
{
    std::string name;
    std::string source;
    int64_t expected = 0;
};

Workload
parseWorkload(const std::string &spec)
{
    namespace wl = april::workloads;
    std::vector<std::string> parts = april::cli::splitSpec(spec);
    auto arg = [&](size_t i, int fallback) {
        return april::cli::specArg(parts, i, fallback);
    };
    Workload w;
    w.name = parts.empty() ? "fib" : parts[0];
    if (w.name == "fib") {
        int fib_n = arg(1, 12);
        w.source = wl::fibSource(fib_n);
        w.expected = wl::fibExpected(fib_n);
    } else if (w.name == "factor") {
        int lo = arg(1, 1000);
        int hi = arg(2, 1040);
        w.source = wl::factorSource(lo, hi);
        w.expected = wl::factorExpected(lo, hi);
    } else if (w.name == "queens") {
        int queens_n = arg(1, 6);
        w.source = wl::queensSource(queens_n);
        w.expected = wl::queensExpected(queens_n);
    } else if (w.name == "speech") {
        int layers = arg(1, 8);
        int width = arg(2, 12);
        w.source = wl::speechSource(layers, width);
        w.expected = wl::speechExpected(layers, width);
    } else {
        april::fatal("april-prof: unknown workload '", w.name,
                     "' (try fib, factor, queens, speech)");
    }
    return w;
}

struct RunOptions
{
    std::string workload = "fib:12";
    bool perfect = false;
    uint32_t nodes = 4;
    uint32_t threads = 1;
    uint32_t frames = 4;
    uint64_t period = 64;
    uint64_t interval = 4096;
    size_t top = 8;
    uint64_t maxCycles = 200'000'000;
    std::string jsonFile;
    std::string foldedFile;
    std::string countersFile;
    std::string seriesFile;
};

int
runProfile(const RunOptions &opt)
{
    using namespace april;

    Workload w = parseWorkload(opt.workload);

    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Lazy;
    mult::Compiler compiler(as, copts);
    compiler.compileSource(w.source);
    Program prog = as.finish();

    std::unique_ptr<AlewifeMachine> alewife;
    std::unique_ptr<PerfectMachine> perfect;
    if (opt.perfect) {
        PerfectMachineParams mp;
        mp.numNodes = opt.nodes;
        mp.proc.numFrames = opt.frames;
        mp.profile = true;
        mp.profilePeriod = opt.period;
        mp.statsInterval = opt.interval;
        perfect = std::make_unique<PerfectMachine>(mp, &prog);
    } else {
        AlewifeParams mp;
        mp.network = {.dim = 2, .radix = 2};
        mp.controller.cache = {.lineWords = 4, .numLines = 4096,
                               .assoc = 4};     // Table 4: 64 KB
        mp.proc.numFrames = opt.frames;
        mp.profile = true;
        mp.profilePeriod = opt.period;
        mp.statsInterval = opt.interval;
        mp.hostThreads = opt.threads;
        alewife = std::make_unique<AlewifeMachine>(mp, &prog);
    }
    if (opt.perfect && opt.threads > 1) {
        std::fprintf(stderr,
                     "april-prof: --threads applies to the ALEWIFE "
                     "machine; the perfect machine runs serially\n");
    }

    uint64_t cycles;
    bool halted;
    std::vector<Word> console;
    // No quiesce: the report should cover the run up to MachineHalt,
    // not however long the leftover workers keep spinning afterwards.
    if (perfect) {
        perfect->run(opt.maxCycles);
        perfect->verifyCycleAccounting();
        cycles = perfect->cycle();
        halted = perfect->halted();
        console = perfect->console();
    } else {
        alewife->run(opt.maxCycles);
        alewife->verifyCycleAccounting();
        cycles = alewife->cycle();
        halted = alewife->halted();
        console = alewife->console();
    }
    if (!halted) {
        std::fprintf(stderr,
                     "april-prof: %s did not halt in %llu cycles\n",
                     w.name.c_str(),
                     (unsigned long long)opt.maxCycles);
        return 2;
    }
    if (console.empty()) {
        std::fprintf(stderr, "april-prof: no boot output\n");
        return 2;
    }
    std::printf("%s on %s: result %s (expected %lld), %llu cycles",
                opt.workload.c_str(),
                perfect ? "perfect shared memory" : "2x2 ALEWIFE",
                tagged::toString(console.back()).c_str(),
                (long long)w.expected, (unsigned long long)cycles);
    if (alewife && alewife->hostThreads() > 1)
        std::printf(" (%u host threads)", alewife->hostThreads());
    std::printf("\n\n");

    profile::ProfileSource src = perfect ? perfect->profileSource()
                                         : alewife->profileSource();
    profile::writeProfileText(std::cout, src, opt.top);

    auto writeTo = [](const std::string &path, auto &&writer) {
        cli::writeReportFile("april-prof", path,
                             [&](std::ostream &os) {
                                 writer(os);
                                 os << "\n";
                             });
    };
    writeTo(opt.jsonFile, [&](std::ostream &os) {
        profile::writeProfileJson(os, src);
    });
    writeTo(opt.foldedFile, [&](std::ostream &os) {
        profile::writeFolded(os, src);
    });
    writeTo(opt.countersFile, [&](std::ostream &os) {
        profile::writeCounterTrace(os, src);
    });
    writeTo(opt.seriesFile, [&](std::ostream &os) {
        if (src.intervals)
            src.intervals->writeCsv(os);
    });
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string mode;
    std::string schema_path = "../tools/april_prof_schema.json";
    RunOptions opt;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg == "--diff" || arg == "--check")
            mode = arg;
        else if (arg.rfind("--workload=", 0) == 0)
            opt.workload = value("--workload=");
        else if (arg == "--perfect")
            opt.perfect = true;
        else if (arg.rfind("--nodes=", 0) == 0)
            opt.nodes = uint32_t(std::atoi(value("--nodes=").c_str()));
        else if (arg.rfind("--threads=", 0) == 0)
            opt.threads =
                uint32_t(std::atoi(value("--threads=").c_str()));
        else if (arg.rfind("--frames=", 0) == 0)
            opt.frames =
                uint32_t(std::atoi(value("--frames=").c_str()));
        else if (arg.rfind("--period=", 0) == 0)
            opt.period = std::strtoull(value("--period=").c_str(),
                                       nullptr, 10);
        else if (arg.rfind("--interval=", 0) == 0)
            opt.interval = std::strtoull(value("--interval=").c_str(),
                                         nullptr, 10);
        else if (arg.rfind("--top=", 0) == 0)
            opt.top = size_t(std::atoi(value("--top=").c_str()));
        else if (arg.rfind("--max-cycles=", 0) == 0)
            opt.maxCycles = std::strtoull(
                value("--max-cycles=").c_str(), nullptr, 10);
        else if (arg.rfind("--json=", 0) == 0)
            opt.jsonFile = value("--json=");
        else if (arg.rfind("--folded=", 0) == 0)
            opt.foldedFile = value("--folded=");
        else if (arg.rfind("--counters=", 0) == 0)
            opt.countersFile = value("--counters=");
        else if (arg.rfind("--series=", 0) == 0)
            opt.seriesFile = value("--series=");
        else if (arg.rfind("--schema=", 0) == 0)
            schema_path = value("--schema=");
        else if (arg.rfind("--", 0) == 0)
            return usage();
        else
            positional.push_back(arg);
    }

    try {
        if (mode == "--diff") {
            if (positional.size() != 2)
                return usage();
            return runDiff(positional[0], positional[1]);
        }
        if (mode == "--check") {
            if (positional.size() != 1)
                return usage();
            return april::cli::checkReport("april-prof", positional[0],
                                           schema_path,
                                           "schema + invariants",
                                           checkInvariants);
        }
        if (!positional.empty())
            return usage();
        return runProfile(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "april-prof: %s\n", e.what());
        return 2;
    }
}

/**
 * @file
 * april-task — run a workload with task-level observability on and
 * report what the runtime's tasks did (DESIGN.md §7.10).
 *
 * Modes:
 *
 *   april-task [--workload=NAME[:ARGS]] [options]
 *       Run a Table 3 workload (fib[:n], factor[:lo:hi], queens[:n],
 *       speech[:layers:width]) on a 2x2 ALEWIFE machine (or perfect
 *       shared memory with --perfect), or the hand-written
 *       coherent16[:iters] loop on a 4x4 one, with task tracing on,
 *       then print the task report: latency-tolerance breakdown
 *       (T_actual vs the DAG lower bound), slowest tasks, hottest
 *       synchronization words, the critical path, and runtime health
 *       (starvation, steal convoys, lost wakeups). The report is
 *       bit-identical across cycle-skip modes and host-thread counts.
 *
 *   april-task --diff A.json B.json
 *       Compare two report JSON files: cycle/score movement, task and
 *       steal count deltas.
 *
 *   april-task --check FILE [--schema=SCHEMA.json]
 *       Validate a report JSON file against the checked-in schema
 *       (tools/april_task_schema.json) plus the work-conservation and
 *       score-range invariants. Exit 1 on violation.
 *
 * Exit codes: 0 ok, 1 check/diff violation, 2 usage or run failure.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/json_parse.hh"
#include "common/logging.hh"
#include "machine/alewife_machine.hh"
#include "machine/perfect_machine.hh"
#include "mult/compiler.hh"
#include "task/task_trace.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

#include "cli_common.hh"

namespace
{

using april::json::Json;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: april-task [--workload=NAME[:ARGS]] [options]\n"
        "       april-task --diff A.json B.json\n"
        "       april-task --check FILE [--schema=SCHEMA.json]\n"
        "\n"
        "workloads: fib[:n] factor[:lo:hi] queens[:n] "
        "speech[:layers:width] coherent16[:iters]\n"
        "options:\n"
        "  --perfect          perfect shared memory instead of ALEWIFE\n"
        "  --nodes=N          node count with --perfect (default 4)\n"
        "  --threads=N        host worker threads for the ALEWIFE run\n"
        "                     (default 1; the report is bit-identical\n"
        "                     at any thread count)\n"
        "  --frames=N         task frames per processor (default 4)\n"
        "  --spin-touch       switch-spin on unresolved future touches\n"
        "                     instead of unload-blocking (EXPERIMENTS.md\n"
        "                     X11's frames-sweep policy; lazy futures\n"
        "                     only)\n"
        "  --max-cycles=N     run budget (default 200000000)\n"
        "  --no-skip          tick every cycle (differential runs)\n"
        "  --json=FILE        write the report JSON\n"
        "  --perfetto=FILE    write the Chrome trace with task spans\n"
        "                     and steal flow arrows stitched in\n");
    return 2;
}

// --- check mode ------------------------------------------------------

/** Work conservation, score range and critical-chain referential
 *  integrity over a report. */
void
checkInvariants(const Json &report, std::vector<std::string> &errors)
{
    if (report.has("tasks") && report.has("totalWork")) {
        double sum = 0;
        for (const Json &t : report.at("tasks").array)
            sum += t.at("work").number;
        if (sum != report.at("totalWork").number) {
            errors.push_back("/totalWork: task work sums to " +
                             std::to_string(sum) + ", report says " +
                             std::to_string(
                                 report.at("totalWork").number));
        }
    }
    if (report.has("score")) {
        double s = report.at("score").number;
        if (s < 0.0 || s > 1.0)
            errors.push_back("/score: " + std::to_string(s) +
                             " outside [0, 1]");
    }
    if (report.has("criticalChain") && report.has("tasks")) {
        for (const Json &id : report.at("criticalChain").array) {
            bool found = false;
            for (const Json &t : report.at("tasks").array) {
                if (t.at("id").number == id.number) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                errors.push_back("/criticalChain: task " +
                                 std::to_string(id.number) +
                                 " not in /tasks");
            }
        }
    }
}

// --- diff mode -------------------------------------------------------

int
runDiff(const std::string &file_a, const std::string &file_b)
{
    Json a = april::json::parseJson(
        april::cli::readFile("april-task", file_a));
    Json b = april::json::parseJson(
        april::cli::readFile("april-task", file_b));
    std::printf("diff %s -> %s\n", file_a.c_str(), file_b.c_str());
    auto row = [&](const char *key, const char *label) {
        double va = a.at(key).number;
        double vb = b.at(key).number;
        std::printf("%-16s %12.0f -> %12.0f (%+.0f)\n", label, va, vb,
                    vb - va);
    };
    row("totalCycles", "total cycles");
    row("totalWork", "total work");
    row("criticalPath", "critical path");
    row("exposed", "exposed");
    row("waitTotal", "wait total");
    row("spawns", "spawns");
    row("steals", "steals");
    std::printf("%-16s %12.4f -> %12.4f (%+.4f)\n", "score",
                a.at("score").number, b.at("score").number,
                b.at("score").number - a.at("score").number);
    size_t ta = a.at("tasks").array.size();
    size_t tb = b.at("tasks").array.size();
    std::printf("%-16s %12zu -> %12zu (%+lld)\n", "tasks", ta, tb,
                (long long)tb - (long long)ta);
    return 0;
}

// --- run mode --------------------------------------------------------

struct RunOptions
{
    std::string workload = "fib:12";
    bool perfect = false;
    uint32_t nodes = 4;
    uint32_t threads = 1;
    uint32_t frames = 4;
    bool spinTouch = false;
    uint64_t maxCycles = 200'000'000;
    bool cycleSkip = true;
    std::string jsonFile;
    std::string perfettoFile;
};

int
runReport(const RunOptions &opt)
{
    using namespace april;

    std::vector<std::string> parts = cli::splitSpec(opt.workload);
    std::string name = parts.empty() ? "fib" : parts[0];
    auto arg = [&](size_t i, int fallback) {
        return cli::specArg(parts, i, fallback);
    };

    std::unique_ptr<AlewifeMachine> alewife;
    std::unique_ptr<PerfectMachine> perfect;
    Program prog;

    if (name == "coherent16") {
        workloads::CoherentLoop loop = workloads::buildCoherentLoop(
            16, uint32_t(arg(1, 200)));
        prog = std::move(loop.prog);
        AlewifeParams p;
        p.network = {.dim = 2, .radix = 4};          // 16 nodes
        p.wordsPerNode = 1u << 16;
        p.bootRuntime = false;
        p.controller.cache = {.lineWords = 4, .numLines = 64,
                              .assoc = 2};
        p.proc.numFrames = opt.frames;
        p.hostThreads = opt.threads;
        p.cycleSkip = opt.cycleSkip;
        p.taskTrace = true;
        p.traceEvents = !opt.perfettoFile.empty();
        alewife = std::make_unique<AlewifeMachine>(p, &prog);
        for (uint32_t n = 0; n < alewife->numNodes(); ++n)
            workloads::bootCoherentNode(alewife->proc(n), prog);
        alewife->memory().write(loop.count, tagged::fixnum(0));
    } else {
        namespace wl = april::workloads;
        std::string source;
        if (name == "fib")
            source = wl::fibSource(arg(1, 12));
        else if (name == "factor")
            source = wl::factorSource(arg(1, 1000), arg(2, 1040));
        else if (name == "queens")
            source = wl::queensSource(arg(1, 6));
        else if (name == "speech")
            source = wl::speechSource(arg(1, 8), arg(2, 12));
        else
            fatal("april-task: unknown workload '", name,
                  "' (try fib, factor, queens, speech, coherent16)");
        Assembler as;
        rt::Runtime runtime({.spinTouch = opt.spinTouch});
        runtime.emit(as);
        mult::CompileOptions copts;
        copts.futures = mult::CompileOptions::FutureMode::Lazy;
        mult::Compiler compiler(as, copts);
        compiler.compileSource(source);
        prog = as.finish();
        if (opt.perfect) {
            PerfectMachineParams p;
            p.numNodes = opt.nodes;
            p.proc.numFrames = opt.frames;
            p.cycleSkip = opt.cycleSkip;
            p.taskTrace = true;
            p.traceEvents = !opt.perfettoFile.empty();
            perfect = std::make_unique<PerfectMachine>(p, &prog);
        } else {
            AlewifeParams p;
            p.network = {.dim = 2, .radix = 2};      // 4 nodes
            p.controller.cache = {.lineWords = 4, .numLines = 4096,
                                  .assoc = 4};       // Table 4: 64 KB
            p.proc.numFrames = opt.frames;
            p.hostThreads = opt.threads;
            p.cycleSkip = opt.cycleSkip;
            p.taskTrace = true;
            p.traceEvents = !opt.perfettoFile.empty();
            alewife = std::make_unique<AlewifeMachine>(p, &prog);
        }
    }

    uint64_t cycles;
    bool halted;
    task::Tracer *tracer;
    uint32_t num_nodes;
    if (perfect) {
        perfect->run(opt.maxCycles);
        cycles = perfect->cycle();
        halted = perfect->halted();
        tracer = perfect->taskTracer();
        num_nodes = perfect->numNodes();
    } else {
        alewife->run(opt.maxCycles);
        cycles = alewife->cycle();
        halted = alewife->halted();
        tracer = alewife->taskTracer();
        num_nodes = alewife->numNodes();
    }
    if (!halted) {
        std::fprintf(stderr,
                     "april-task: %s did not halt in %llu cycles\n",
                     opt.workload.c_str(),
                     (unsigned long long)opt.maxCycles);
        return 2;
    }

    std::printf("%s on %s: %llu cycles\n\n", opt.workload.c_str(),
                perfect ? "perfect shared memory"
                        : (name == "coherent16" ? "4x4 ALEWIFE"
                                                : "2x2 ALEWIFE"),
                (unsigned long long)cycles);

    task::AnalyzeParams ap;
    ap.numNodes = num_nodes;
    ap.totalCycles = cycles;
    task::Report report = task::analyze(tracer->events(), ap);
    report.dropped = tracer->dropped();
    task::writeReportText(std::cout, report);

    april::cli::writeReportFile(
        "april-task", opt.jsonFile, [&](std::ostream &os) {
            task::writeReportJson(os, report);
            os << "\n";
        });
    april::cli::writeReportFile(
        "april-task", opt.perfettoFile, [&](std::ostream &os) {
            if (perfect)
                perfect->writeTrace(os);
            else
                alewife->writeTrace(os);
        });
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string mode;
    std::string schema_path = "../tools/april_task_schema.json";
    RunOptions opt;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--diff" || arg == "--check")
            mode = arg;
        else if (const char *v = april::cli::optValue(arg, "--workload="))
            opt.workload = v;
        else if (arg == "--perfect")
            opt.perfect = true;
        else if (const char *v = april::cli::optValue(arg, "--nodes=")) {
            if (!april::cli::parseU32(v, opt.nodes))
                return usage();
        } else if (const char *v =
                       april::cli::optValue(arg, "--threads=")) {
            if (!april::cli::parseU32(v, opt.threads))
                return usage();
        } else if (const char *v =
                       april::cli::optValue(arg, "--frames=")) {
            if (!april::cli::parseU32(v, opt.frames))
                return usage();
        } else if (arg == "--spin-touch")
            opt.spinTouch = true;
        else if (const char *v =
                     april::cli::optValue(arg, "--max-cycles=")) {
            if (!april::cli::parseU64(v, opt.maxCycles))
                return usage();
        } else if (arg == "--no-skip")
            opt.cycleSkip = false;
        else if (const char *v = april::cli::optValue(arg, "--json="))
            opt.jsonFile = v;
        else if (const char *v =
                     april::cli::optValue(arg, "--perfetto="))
            opt.perfettoFile = v;
        else if (const char *v = april::cli::optValue(arg, "--schema="))
            schema_path = v;
        else if (arg.rfind("--", 0) == 0)
            return usage();
        else
            positional.push_back(arg);
    }

    try {
        if (mode == "--diff") {
            if (positional.size() != 2)
                return usage();
            return runDiff(positional[0], positional[1]);
        }
        if (mode == "--check") {
            if (positional.size() != 1)
                return usage();
            return april::cli::checkReport("april-task", positional[0],
                                           schema_path,
                                           "schema + invariants",
                                           checkInvariants);
        }
        if (!positional.empty())
            return usage();
        return runReport(opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "april-task: %s\n", e.what());
        return 2;
    }
}

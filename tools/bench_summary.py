#!/usr/bin/env python3
"""Aggregate every BENCH_*.json in a directory into BENCH_summary.json.

Each bench run drops one free-standing JSON file (BENCH_sim_speed.json,
BENCH_task_tolerance.json, ...); per-run trajectories were previously
unaggregated. This collects them into a single artifact

    { "schema": "bench-summary/1",
      "count": N,
      "benches": { "<name>": { "file": ..., "data": {...} }, ... } }

and validates the result against tools/bench_summary_schema.json with
the same minimal JSON-Schema subset the C++ --check tools implement
(type / required / properties / additionalProperties / items).

Usage: bench_summary.py [DIR] [--out FILE] [--schema FILE]
Exit codes: 0 ok, 1 validation failure, 2 usage / no inputs.
"""

import glob
import json
import os
import sys


def validate(value, schema, path, errors):
    """Minimal JSON-Schema subset checker (mirrors cli_common's)."""
    t = schema.get("type")
    if t:
        ok = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
        }[t](value)
        if not ok:
            errors.append(f"{path or '/'}: expected {t}")
            return
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path or '/'}: missing required '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}/{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}/{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, sub in enumerate(value):
            validate(sub, schema["items"], f"{path}/{i}", errors)


def main(argv):
    directory = "."
    out = None
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "bench_summary_schema.json")
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--out":
            out = args.pop(0)
        elif arg.startswith("--out="):
            out = arg.split("=", 1)[1]
        elif arg == "--schema":
            schema_path = args.pop(0)
        elif arg.startswith("--schema="):
            schema_path = arg.split("=", 1)[1]
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            directory = arg
    if out is None:
        out = os.path.join(directory, "BENCH_summary.json")

    benches = {}
    for f in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        base = os.path.basename(f)
        if base == "BENCH_summary.json":
            continue
        name = base[len("BENCH_"):-len(".json")]
        try:
            with open(f) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_summary: {f}: {e}", file=sys.stderr)
            return 1
        benches[name] = {"file": base, "data": data}
    if not benches:
        print(f"bench_summary: no BENCH_*.json under {directory}",
              file=sys.stderr)
        return 2

    summary = {"schema": "bench-summary/1", "count": len(benches),
               "benches": benches}

    with open(schema_path) as fh:
        schema = json.load(fh)
    errors = []
    validate(summary, schema, "", errors)
    if errors:
        for e in errors:
            print(f"bench_summary: {e}", file=sys.stderr)
        return 1

    with open(out, "w") as fh:
        json.dump(summary, fh, indent=1)
        fh.write("\n")
    print(f"bench_summary: {len(benches)} benches -> {out}")
    for name in benches:
        print(f"  {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

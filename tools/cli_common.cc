#include "cli_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/json_schema.hh"
#include "common/logging.hh"

namespace april::cli
{

const char *
optValue(const std::string &arg, const char *prefix)
{
    size_t n = std::strlen(prefix);
    return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
}

bool
parseU32(const char *s, uint32_t &out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || end == s || *end || v > UINT32_MAX)
        return false;
    out = uint32_t(v);
    return true;
}

bool
parseU64(const char *s, uint64_t &out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || end == s || *end)
        return false;
    out = uint64_t(v);
    return true;
}

std::string
readFile(const char *tool, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal(tool, ": cannot open ", path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::vector<std::string>
splitSpec(const std::string &spec)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t colon = spec.find(':', pos);
        if (colon == std::string::npos) {
            parts.push_back(spec.substr(pos));
            break;
        }
        parts.push_back(spec.substr(pos, colon - pos));
        pos = colon + 1;
    }
    return parts;
}

int
specArg(const std::vector<std::string> &parts, size_t i, int fallback)
{
    return parts.size() > i ? std::atoi(parts[i].c_str()) : fallback;
}

void
writeReportFile(const char *tool, const std::string &path,
                const std::function<void(std::ostream &)> &writer)
{
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os)
        fatal(tool, ": cannot write ", path);
    writer(os);
    std::printf("wrote %s\n", path.c_str());
}

int
checkReport(const char *tool, const std::string &file,
            const std::string &schema_path, const char *what,
            const ExtraCheck &extra)
{
    json::Json report = json::parseJson(readFile(tool, file));
    json::Json schema = json::parseJson(readFile(tool, schema_path));
    std::vector<std::string> errors;
    json::validateSchema(report, schema, "", errors);
    if (extra)
        extra(report, errors);
    if (errors.empty()) {
        std::printf("%s: ok (%s)\n", file.c_str(), what);
        return 0;
    }
    for (const std::string &e : errors)
        std::fprintf(stderr, "%s: %s\n", file.c_str(), e.c_str());
    return 1;
}

} // namespace april::cli

/**
 * @file
 * Plumbing shared by the report tools (april-prof, april-coh,
 * april-mc, april-task): --name=value option parsing, workload-spec
 * splitting, file slurping, report-file writing with the "wrote X"
 * confirmation, and the --check mode's schema-plus-invariants
 * validation loop.
 */

#ifndef APRIL_TOOLS_CLI_COMMON_HH
#define APRIL_TOOLS_CLI_COMMON_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/json_parse.hh"

namespace april::cli
{

/** Value of a "--name=" option: the text after @p prefix when @p arg
 *  starts with it, nullptr otherwise (so `if (const char *v = ...)`
 *  chains read like april-mc's parser). */
const char *optValue(const std::string &arg, const char *prefix);

/** Strict decimal parses; false on trailing junk or overflow. */
bool parseU32(const char *s, uint32_t &out);
bool parseU64(const char *s, uint64_t &out);

/** Slurp @p path; fatal("<tool>: cannot open <path>") on failure. */
std::string readFile(const char *tool, const std::string &path);

/** Split a "name:arg1:arg2" workload spec on colons. */
std::vector<std::string> splitSpec(const std::string &spec);

/** Spec part @p i as an int, @p fallback when absent. */
int specArg(const std::vector<std::string> &parts, size_t i,
            int fallback);

/** When @p path is non-empty: open it, run @p writer on the stream,
 *  print "wrote <path>"; fatal on open failure. */
void writeReportFile(const char *tool, const std::string &path,
                     const std::function<void(std::ostream &)> &writer);

/** Extra invariant pass run by checkReport after schema validation;
 *  append human-readable violations to the error list. */
using ExtraCheck =
    std::function<void(const json::Json &, std::vector<std::string> &)>;

/**
 * The tools' --check mode: parse @p file and @p schema_path, validate
 * the report against the schema subset, run @p extra (may be null),
 * then print "<file>: ok (<what>)" or every violation to stderr.
 * @return process exit code: 0 ok, 1 violation.
 */
int checkReport(const char *tool, const std::string &file,
                const std::string &schema_path, const char *what,
                const ExtraCheck &extra);

} // namespace april::cli

#endif // APRIL_TOOLS_CLI_COMMON_HH
